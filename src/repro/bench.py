"""``repro bench`` — performance harness for the numeric core.

Times the production mpx kernel against the retained reference kernels
(:mod:`repro.detectors.reference`), MERLIN before/after the shared-stats
rewrite, the kNN detector's cached-vs-legacy scoring, the one-liner
sliding extrema, a small end-to-end engine grid, the ``scaling``
section — bounded-memory column-chunked profiles at n up to 10⁶ with
the peak working set measured via ``tracemalloc`` — and the
``streaming`` section: incremental matrix-profile append throughput
(unbounded and bounded-history), batch-vs-stream parity under the
1e-8 correlation-space contract, and replay engine throughput.  The
``serve`` section drives the multi-tenant service tier
(:mod:`repro.serve`) with N interleaved UCR-sim streams and records
sustained points/sec, p50/p99 arrival-to-score latency, backpressure
rejections and the mid-drive snapshot/restore parity verdict.
The ``obs`` section prices the :mod:`repro.obs` instrumentation
itself: the kernel hot loop bare (no telemetry calls at all) vs
through :func:`matrix_profile` with the shipped disabled tracer vs
under an enabled tracing session, plus span and counter
microbenchmarks — the disabled-path overhead is the number the
"observability is free until you ask" claim rests on.
Results are written as machine-readable JSON; the output name derives
from the trajectory counter (``benchmarks/perf/BENCH_<n>.json``,
currently ``BENCH_7``) so every recorded point keeps its place in the
series.

Methodology
-----------
* every number is the **median of k** runs (``--repeats``) of
  ``time.perf_counter``;
* input data is deterministic (fixed seeds) — only the timings vary;
* the O(n²·w) brute-force baseline is timed on a leading slice of rows
  and extrapolated linearly (every row costs the same O(n·w), so the
  scaling is exact in expectation); entries produced that way carry
  ``"naive_estimated": true`` and the row count used;
* the retained STOMP kernel is timed in full, with fewer repeats at
  sizes where a single run is already seconds long;
* the scaling section runs the kernel's public anytime mode
  (``approx=``) and extrapolates by exact pair count
  (``"seconds_estimated": true``) — the O(m²) full sweep at n = 10⁶ is
  hours of serial arithmetic, but the working set peaks in the very
  first block, so the memory claim is measured, not modeled;
* the anytime section measures the ``approx=`` upper bound's real
  convergence (max/mean/p99 corr-space deviation from the exact
  profile) on a periodic fixture and on the adversarial random walk;
* the parallel section runs *full* exact sweeps serially and with
  ``jobs=N`` and asserts the profiles and indices bit-identical; the
  measured speedup is reported next to a critical-path model over the
  shard pair counts plus ``cpu_count``, because a container with fewer
  cores than ``jobs`` measures ~1x no matter how good the sharding is.
"""

from __future__ import annotations

import json
import os
import platform
import time
import tracemalloc
from statistics import median

import numpy as np

__all__ = [
    "run_bench",
    "format_bench",
    "write_bench",
    "TRAJECTORY",
    "BENCH_LABEL",
    "DEFAULT_OUT",
    "SECTIONS",
]

# the perf-trajectory counter: bump it when a PR records a new point.
# Output names and report labels derive from it, so README/CLI help
# never drift from the actual file written.
TRAJECTORY = 10
BENCH_LABEL = f"BENCH_{TRAJECTORY}"
DEFAULT_OUT = os.path.join("benchmarks", "perf", f"{BENCH_LABEL}.json")
SECTIONS = (
    "kernel",
    "merlin",
    "knn",
    "oneliner",
    "engine",
    "scaling",
    "streaming",
    "serve",
    "obs",
    "watch",
    "anytime",
    "parallel",
    "drift",
)

_FULL_SIZES = (2_000, 5_000, 10_000, 20_000)
_QUICK_SIZES = (2_048, 8_192)
_FULL_W = 100
_QUICK_W = 64
_SEED = 7

_SCALING_SIZES = (100_000, 500_000, 1_000_000)
_SCALING_QUICK_SIZES = (100_000,)
_SCALING_W = 100
# sweep-workspace cap handed to the kernel: half the 256 MB end-to-end
# target, leaving room for the O(n) series/stats/recurrence vectors
_SCALING_KERNEL_BUDGET = 128 << 20
_SCALING_TARGET_BYTES = 256 << 20
_SCALING_PAIR_CAP = 150_000_000
_SCALING_QUICK_PAIR_CAP = 30_000_000
# measure the unchunked kernel's real peak only where its O(block·n)
# buffers stay modest; above this we report the analytic footprint
_SCALING_UNCHUNKED_MEASURE_LIMIT = 600 << 20

# anytime: fixtures where the leading-diagonal upper bound is measured
# against the exact profile.  The top fraction stays a hair under 10%
# because the kernel rounds coverage UP to whole 128-diagonal blocks —
# requesting exactly 0.10 can sweep 10.03% of the pairs, which would
# make the "within 10% of the pair budget" claim false by rounding.
_ANYTIME_N = 100_000
_ANYTIME_QUICK_N = 20_000
_ANYTIME_W = 100
_ANYTIME_PERIOD = 150
_ANYTIME_FRACTIONS = (0.01, 0.02, 0.05, 0.098)
_ANYTIME_QUICK_FRACTIONS = (0.05, 0.098)

# parallel: (n, jobs-to-measure) cases.  Every case runs the FULL exact
# sweep — once serial, once per jobs value — with indices, and asserts
# bit identity; repeats stay at 1 because each run is minutes long.
# jobs=2 is only exercised at the affordable size; at n = 10⁶ the
# serial + jobs=4 pair alone is the better part of a core-day.
_PARALLEL_CASES = ((200_000, (2, 4)), (1_000_000, (4,)))
_PARALLEL_QUICK_CASES = ((50_000, (2,)),)
_PARALLEL_W = 100


# Every multi-repeat timing feeds its raw runs here; run_bench distils
# them into the host block's timing_noise_pct — the per-host allowance
# `repro bench compare` uses, calibrated from this report's own spread
# instead of a guessed constant.
_NOISE_LOG: "list[list[float]]" = []


def _timed_runs(fn, repeats: int) -> "tuple[float, list[float]]":
    runs = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - start)
    if len(runs) > 1:
        _NOISE_LOG.append(list(runs))
    return float(median(runs)), runs


def _timed(fn, repeats: int) -> float:
    return _timed_runs(fn, repeats)[0]


def _timing_noise_pct() -> float | None:
    """p90 of |run/median − 1| across every multi-repeat timing (%)."""
    deviations: "list[float]" = []
    for runs in _NOISE_LOG:
        mid = median(runs)
        if mid <= 0:
            continue
        deviations.extend(abs(run / mid - 1.0) * 100.0 for run in runs)
    if not deviations:
        return None
    deviations.sort()
    return float(deviations[int(0.9 * (len(deviations) - 1))])


def _host_block() -> dict:
    """The uniform per-report host identity ``bench compare`` keys on."""
    overrides = {
        key: os.environ[key]
        for key in sorted(os.environ)
        if key.startswith("REPRO_")
    }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "env_overrides": overrides,
        "timing_noise_pct": None,  # filled after the sections ran
    }


def _walk(n: int, seed: int = _SEED) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(0.0, 1.0, n))


def _ratio(numerator: float, denominator: float) -> float:
    return float(numerator / denominator) if denominator > 0 else float("inf")


# ---------------------------------------------------------------------------
# kernel: mpx vs the retained references


def _bench_kernel(sizes, w: int, repeats: int, naive_rows: int) -> dict:
    from .detectors import matrix_profile
    from .detectors.reference import naive_profile, stomp_profile

    results = []
    for n in sizes:
        values = _walk(n)
        num_subs = n - w + 1
        mpx, mpx_runs = _timed_runs(
            lambda: matrix_profile(values, w, with_indices=False), repeats
        )
        mpx_indexed = _timed(lambda: matrix_profile(values, w), repeats)
        stomp_repeats = repeats if n <= 5_000 else 1
        stomp = _timed(lambda: stomp_profile(values, w), stomp_repeats)
        rows = min(naive_rows, num_subs)
        naive_slice = _timed(lambda: naive_profile(values, w, row_limit=rows), 1)
        naive = naive_slice * (num_subs / rows)
        results.append(
            {
                "n": n,
                "w": w,
                "num_subsequences": num_subs,
                "mpx_seconds": mpx,
                # raw repeats: `bench compare` bootstraps these so a
                # regression verdict carries a CI, not a point estimate
                "mpx_seconds_runs": [round(run, 6) for run in mpx_runs],
                "mpx_indexed_seconds": mpx_indexed,
                "stomp_seconds": stomp,
                "naive_seconds": naive,
                "naive_rows_timed": rows,
                "naive_estimated": rows < num_subs,
                "speedup_vs_naive": _ratio(naive, mpx),
                "speedup_vs_stomp": _ratio(stomp, mpx),
            }
        )
    return {"w": w, "results": results}


# ---------------------------------------------------------------------------
# MERLIN: legacy per-length STOMP loop vs shared stats + early abandon


def _legacy_merlin(values: np.ndarray, min_w: int, max_w: int, num_lengths: int):
    """The pre-refactor merlin(): a full STOMP profile per length."""
    from .detectors.merlin import candidate_lengths
    from .detectors.reference import stomp_profile

    lengths, locations, distances = [], [], []
    for w in candidate_lengths(min_w, max_w, num_lengths):
        if values.size < 2 * w:
            continue
        result = stomp_profile(values, w)
        finite = np.where(np.isfinite(result.profile), result.profile, -np.inf)
        location = int(np.argmax(finite))
        lengths.append(w)
        locations.append(location)
        distances.append(float(finite[location]) / np.sqrt(w))
    best = int(np.argmax(distances))
    return lengths[best], locations[best], float(distances[best])


def _bench_merlin(quick: bool, repeats: int) -> dict:
    from .datasets import make_taxi
    from .detectors import merlin

    taxi = make_taxi()
    values = taxi.values[:4_000] if quick else taxi.values
    min_w, max_w, num_lengths = 24, 96, 5

    legacy_best = _legacy_merlin(values, min_w, max_w, num_lengths)
    exact = merlin(values, min_w, max_w, num_lengths)
    abandoned = merlin(values, min_w, max_w, num_lengths, early_abandon=True)
    for candidate in (exact.best, abandoned.best):
        # lengths and locations must agree exactly; the distance only to
        # the kernels' 1e-8 correlation-space contract (STOMP and mpx
        # round their recurrences differently).  normalized² = 2(1 − r),
        # so the honest comparison is on squares with atol 2·1e-8 — a
        # flat tolerance on the distance itself is amplified by 1/d and
        # would abort the bench on contract-compliant divergence
        if candidate[:2] != legacy_best[:2] or not np.isclose(
            candidate[2] ** 2, legacy_best[2] ** 2, rtol=0.0, atol=2e-8
        ):
            raise AssertionError(
                f"MERLIN implementations disagree: legacy={legacy_best} "
                f"exact={exact.best} abandoned={abandoned.best}"
            )

    before = _timed(
        lambda: _legacy_merlin(values, min_w, max_w, num_lengths), max(1, repeats // 2)
    )
    after = _timed(lambda: merlin(values, min_w, max_w, num_lengths), repeats)
    after_abandon = _timed(
        lambda: merlin(values, min_w, max_w, num_lengths, early_abandon=True), repeats
    )
    return {
        "series": "fig8-taxi" + ("[:4000]" if quick else ""),
        "n": int(values.size),
        "min_w": min_w,
        "max_w": max_w,
        "num_lengths": num_lengths,
        "best": {
            "length": legacy_best[0],
            "location": legacy_best[1],
            "normalized_distance": legacy_best[2],
        },
        "before_seconds": before,
        "after_seconds": after,
        "after_abandon_seconds": after_abandon,
        "speedup": _ratio(before, after),
        "speedup_with_abandon": _ratio(before, after_abandon),
    }


# ---------------------------------------------------------------------------
# kNN: fit-time caches vs the legacy per-call recompute


def _legacy_knn_score(detector, values: np.ndarray) -> np.ndarray:
    """The pre-refactor score(): reference squared norms per call."""
    from .detectors.knn import _window_matrix
    from .detectors.matrix_profile import subsequence_to_point_scores

    values = np.asarray(values, dtype=float)
    n = values.size
    reference = detector._train_windows
    queries = _window_matrix(values, detector.w, detector.znorm)
    ref_sq = np.einsum("ij,ij->i", reference, reference)
    kth = min(detector.k, reference.shape[0]) - 1
    distances = np.empty(queries.shape[0])
    for start in range(0, queries.shape[0], detector.chunk):
        block = queries[start : start + detector.chunk]
        block_sq = np.einsum("ij,ij->i", block, block)
        sq = block_sq[:, None] + ref_sq[None, :] - 2.0 * block @ reference.T
        np.maximum(sq, 0.0, out=sq)
        sq.partition(kth, axis=1)
        distances[start : start + detector.chunk] = np.sqrt(sq[:, kth])
    return subsequence_to_point_scores(distances, detector.w, n)


def _bench_knn(quick: bool, repeats: int, w: int) -> dict:
    from .detectors import KnnDistanceDetector

    n = 4_096 if quick else 10_000
    values = _walk(n)
    train = values[: n // 3]
    detector = KnnDistanceDetector(w=w, k=1).fit(train)

    full = _timed(lambda: detector.score(values), repeats)
    full_legacy = _timed(lambda: _legacy_knn_score(detector, values), repeats)
    # streaming shape: many short score() calls against one fitted model —
    # here the legacy per-call reference recompute actually dominates
    segment = values[-4 * w :]
    short = _timed(lambda: detector.score(segment), repeats * 3)
    short_legacy = _timed(lambda: _legacy_knn_score(detector, segment), repeats * 3)
    return {
        "n": n,
        "w": w,
        "k": 1,
        "train_points": int(train.size),
        "full_score_seconds": full,
        "full_score_legacy_seconds": full_legacy,
        "full_score_speedup": _ratio(full_legacy, full),
        "short_segment_points": int(segment.size),
        "short_score_seconds": short,
        "short_score_legacy_seconds": short_legacy,
        "short_score_speedup": _ratio(short_legacy, short),
    }


# ---------------------------------------------------------------------------
# one-liner primitives: deque-equivalent sliding extrema vs bounded loop


def _legacy_mov_extreme(values: np.ndarray, k: int, op) -> np.ndarray:
    """The pre-refactor O(n·k) bounded loop behind movmax/movmin."""
    from .oneliner.primitives import window_bounds

    array = np.asarray(values, dtype=float)
    lo, hi = window_bounds(array.size, k)
    out = np.empty(array.size)
    for i in range(array.size):
        out[i] = op(array[lo[i] : hi[i]])
    return out


def _bench_oneliner(quick: bool, repeats: int) -> dict:
    from .oneliner.primitives import movmax

    n = 50_000 if quick else 200_000
    k = 480  # Table-1 sweeps reach windows this long
    values = _walk(n)
    new = _timed(lambda: movmax(values, k), repeats)
    legacy = _timed(lambda: _legacy_mov_extreme(values, k, np.max), 1)
    if not np.array_equal(movmax(values, k), _legacy_mov_extreme(values, k, np.max)):
        raise AssertionError("movmax rewrite changed results")
    return {
        "n": n,
        "k": k,
        "movmax_seconds": new,
        "movmax_legacy_seconds": legacy,
        "speedup": _ratio(legacy, new),
    }


# ---------------------------------------------------------------------------
# engine: a small end-to-end detector × archive grid


def _bench_engine(quick: bool, repeats: int) -> dict:
    from .datasets import UcrSimConfig, make_ucr
    from .detectors import DetectorSpec
    from .runner import EvalEngine

    archive = make_ucr(UcrSimConfig(size=1 if quick else 4))
    specs = [
        DetectorSpec.create("moving_zscore", k=50),
        DetectorSpec.create("matrix_profile", w=100),
    ]
    engine = EvalEngine(specs)
    seconds = _timed(lambda: engine.run(archive), max(1, repeats // 2))
    return {
        "archive_series": len(archive),
        "total_points": int(sum(s.values.size for s in archive.series)),
        "detectors": [spec.label for spec in specs],
        "cells": len(archive) * len(specs),
        "seconds": seconds,
    }


# ---------------------------------------------------------------------------
# scaling: bounded-memory column-chunked profiles at 1e5..1e6 points


def _traced_peak(fn):
    """``(fn(), peak_bytes)`` with tracemalloc covering just the call."""
    already = tracemalloc.is_tracing()
    if already:
        tracemalloc.reset_peak()
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
        return result, peak
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _scaling_case(
    n: int, w: int, budget: int, pair_cap: int, repeats: int
) -> dict:
    from .detectors import matrix_profile
    # accounting only: the analytic footprint of a hypothetical
    # unchunked sweep, reported next to the chunked one.  The sweeps
    # themselves all go through the public entry point.
    from .detectors.matrix_profile import _sweep_allocation_bytes
    from .detectors.sliding import SlidingStats

    values = _walk(n)
    m = n - w + 1
    exclusion = w
    # the pair cap becomes an anytime fraction; the kernel's own
    # ApproxReport is the single source of truth for how many pairs the
    # resolved (block-rounded) coverage actually sweeps
    num_diagonals = m - exclusion
    total_pairs = num_diagonals * (num_diagonals + 1) // 2
    fraction = min(1.0, pair_cap / total_pairs)

    stats = SlidingStats(values)

    def sweep(frac: float, chunk_width: int | None = None):
        return matrix_profile(
            values,
            w,
            stats=stats,
            with_indices=False,
            approx=frac,
            # an explicit chunk width overrides the budget-derived one
            max_memory_bytes=None if chunk_width is not None else budget,
            chunk_width=chunk_width,
        )

    probe = sweep(fraction)
    report = probe.report
    chunk = probe.chunk_width
    chunked_workspace = probe.workspace_bytes
    unchunked_workspace = _sweep_allocation_bytes(
        m, exclusion, need_indices=False, chunk=None
    )

    seconds_timed = _timed(lambda: sweep(fraction), repeats)
    estimated = not report.exact
    if estimated:
        # two-point extrapolation: a second, smaller slice isolates the
        # per-pair marginal cost from the fixed setup (stats, anchor
        # covariances, buffer allocation), which a single-slice linear
        # scale would multiply along with the sweep itself
        small = sweep(fraction / 8.0)
        pairs_small = small.report.pairs_swept
        seconds_small = _timed(lambda: sweep(fraction / 8.0), repeats)
        per_pair = max(
            (seconds_timed - seconds_small)
            / max(report.pairs_swept - pairs_small, 1),
            0.0,
        )
        seconds = seconds_timed + per_pair * (
            total_pairs - report.pairs_swept
        )
    else:
        seconds = seconds_timed

    # measured peak of the whole pipeline (stats + kernel stats + sweep),
    # in a fresh untraced-data pass so only this case's allocations count
    chunked_run, peak = _traced_peak(
        lambda: matrix_profile(
            values,
            w,
            with_indices=False,
            approx=fraction,
            max_memory_bytes=budget,
        )
    )

    row = {
        "n": n,
        "w": w,
        "num_subsequences": m,
        "max_memory_bytes": budget,
        "chunk_width": chunk,
        "chunked_workspace_bytes": int(chunked_workspace),
        "unchunked_workspace_bytes": int(unchunked_workspace),
        "measured_workspace_bytes": int(chunked_run.workspace_bytes),
        "tracemalloc_peak_bytes": int(peak),
        "series_bytes": int(values.nbytes),
        "seconds": float(seconds),
        "seconds_timed": float(seconds_timed),
        "seconds_estimated": estimated,
        "approx_fraction": float(fraction),
        "diagonals_timed": int(report.diagonals_swept),
        "diagonals_total": int(report.diagonals_total),
        "pairs_timed": int(report.pairs_swept),
        "pairs_total": int(report.pairs_total),
    }
    if unchunked_workspace <= _SCALING_UNCHUNKED_MEASURE_LIMIT:
        # cross-check: the same coverage in one full-width chunk (the
        # public spelling of the unchunked footprint) must be
        # bit-identical, and its measured peak shows the O(block·n) cost
        unchunked_run, unchunked_peak = _traced_peak(
            lambda: sweep(fraction, chunk_width=m)
        )
        if not np.array_equal(chunked_run.profile, unchunked_run.profile):
            raise AssertionError(
                f"chunked sweep diverged from the full-width kernel at "
                f"n={n}, chunk={chunk}"
            )
        row["unchunked_peak_bytes"] = int(unchunked_peak)
        row["profiles_equal"] = True
    return row


def _bench_scaling(
    quick: bool,
    repeats: int,
    *,
    max_memory_bytes: int | None = None,
    sizes: tuple[int, ...] | None = None,
    pair_cap: int | None = None,
) -> dict:
    budget = (
        _SCALING_KERNEL_BUDGET if max_memory_bytes is None else max_memory_bytes
    )
    if sizes is None:
        sizes = _SCALING_QUICK_SIZES if quick else _SCALING_SIZES
    if pair_cap is None:
        pair_cap = _SCALING_QUICK_PAIR_CAP if quick else _SCALING_PAIR_CAP
    try:
        import resource

        ru_maxrss_kb = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        ru_maxrss_kb = None
    return {
        "w": _SCALING_W,
        "max_memory_bytes": budget,
        "target_peak_bytes": _SCALING_TARGET_BYTES,
        "ru_maxrss_kb_before": ru_maxrss_kb,
        "results": [
            _scaling_case(n, _SCALING_W, budget, pair_cap, repeats)
            for n in sizes
        ],
    }


# ---------------------------------------------------------------------------
# anytime: measured convergence of the approx= leading-diagonal bound


def _anytime_fixtures(n: int) -> dict:
    rng = np.random.default_rng(_SEED)
    periodic = np.sin(
        2 * np.pi * np.arange(n) / _ANYTIME_PERIOD
    ) + 0.05 * rng.standard_normal(n)
    return {"periodic": periodic, "walk": _walk(n)}


def _bench_anytime(
    quick: bool, fractions: tuple[float, ...] | None = None
) -> dict:
    """Measure how fast the ``approx=`` upper bound approaches exact.

    The anytime mode guarantees an upper bound on every distance; how
    *tight* the bound is at a given pair budget is a data property, not
    a contract.  Two fixtures bracket it: a noisy periodic signal — the
    shape the bound is good at, because every subsequence has a near
    neighbour a few periods away, i.e. on a leading diagonal — and the
    random walk, the honest adversarial case whose true nearest
    neighbours sit on arbitrary diagonals.  Deviations are reported in
    correlation space (``dev = (d_approx² − d_exact²) / 2w``), the same
    space as the kernel's 1e-8 numerical contract.  Within a fixture
    the rows must be pointwise monotone: the coverage grids are nested
    prefixes, so a larger fraction can never loosen the bound — that
    and the bound itself are asserted, not just reported.
    """
    from .detectors import matrix_profile
    from .detectors.sliding import SlidingStats

    n = _ANYTIME_QUICK_N if quick else _ANYTIME_N
    w = _ANYTIME_W
    if fractions is None:
        fractions = _ANYTIME_QUICK_FRACTIONS if quick else _ANYTIME_FRACTIONS
    fixtures = []
    for name, values in _anytime_fixtures(n).items():
        stats = SlidingStats(values)
        start = time.perf_counter()
        exact = matrix_profile(values, w, stats=stats, with_indices=False)
        exact_seconds = time.perf_counter() - start
        exact_discord = int(np.argmax(exact.profile))
        rows = []
        previous = None
        for fraction in fractions:
            start = time.perf_counter()
            result = matrix_profile(
                values, w, stats=stats, with_indices=False, approx=fraction
            )
            seconds = time.perf_counter() - start
            report = result.report
            # exact arithmetic, not a tolerance: the bound keeps the
            # best-so-far of a *subset* of the same float candidates
            dev = (result.profile**2 - exact.profile**2) / (2.0 * w)
            if float(dev.min()) < 0.0:
                raise AssertionError(
                    f"anytime bound violated on {name} at "
                    f"fraction={fraction}: min dev {dev.min():.3e}"
                )
            if previous is not None and np.any(result.profile > previous):
                raise AssertionError(
                    f"anytime bound loosened on {name} between nested "
                    f"fractions at fraction={fraction}"
                )
            previous = result.profile
            rows.append(
                {
                    "fraction": float(fraction),
                    "fraction_swept": float(report.fraction_swept),
                    "pairs_swept": int(report.pairs_swept),
                    "pairs_total": int(report.pairs_total),
                    "diagonals_swept": int(report.diagonals_swept),
                    "diagonals_total": int(report.diagonals_total),
                    "seconds": float(seconds),
                    "max_dev": float(dev.max()),
                    "mean_dev": float(dev.mean()),
                    "p99_dev": float(np.quantile(dev, 0.99)),
                    "discord_match": bool(
                        int(np.argmax(result.profile)) == exact_discord
                    ),
                }
            )
        fixtures.append(
            {
                "fixture": name,
                "exact_seconds": float(exact_seconds),
                "results": rows,
            }
        )
    return {
        "n": n,
        "w": w,
        "fractions": [float(f) for f in fractions],
        "fixtures": fixtures,
    }


# ---------------------------------------------------------------------------
# parallel: sharded sweeps must be bit-identical, and fast where cores exist


def _parallel_model(shard_pairs, jobs: int) -> float:
    """Critical-path speedup over the shard pair counts.

    List-schedules shards in submission order onto the earliest-free
    worker — the order the pool dispatches them — and divides total
    pair work by the longest worker's share.  This is the arithmetic
    ceiling: it ignores process start-up, argument pickling, and the
    merge, so measured speedups approach it from below as cores allow.
    """
    free = [0] * max(1, int(jobs))
    for pairs in shard_pairs:
        worker = min(range(len(free)), key=free.__getitem__)
        free[worker] += pairs
    return _ratio(sum(shard_pairs), max(free))


def _bench_parallel(
    quick: bool,
    cases=None,
    max_memory_bytes: int | None = None,
) -> dict:
    """Full exact sweeps, serial vs ``jobs=N``, identity asserted.

    Every case runs the complete profile with indices — no slices, no
    extrapolation — once serially and once per jobs value, and raises
    if a single bit of either array differs.  ``speedup_measured`` is
    the honest wall-clock ratio on *this* host; ``speedup_modeled`` is
    the shard-plan critical path, which is what a host with >= jobs
    idle cores would approach.  ``cpu_count`` is recorded so the two
    can be read together: on a 1-core container the measured ratio
    hovers near 1x however good the sharding is.
    """
    from .detectors import matrix_profile, plan_shards

    if cases is None:
        cases = _PARALLEL_QUICK_CASES if quick else _PARALLEL_CASES
    budget = (
        _SCALING_KERNEL_BUDGET if max_memory_bytes is None else max_memory_bytes
    )
    w = _PARALLEL_W
    results = []
    for n, jobs_list in cases:
        values = _walk(n)
        m = n - w + 1
        shards = plan_shards(m, w)
        # diagonal d holds m - d pairs, so shard [lo, hi) holds the
        # arithmetic series (hi-lo)(2m - lo - hi + 1)/2 of them
        shard_pairs = [
            (hi - lo) * (2 * m - lo - hi + 1) // 2 for lo, hi in shards
        ]
        start = time.perf_counter()
        serial = matrix_profile(values, w, max_memory_bytes=budget)
        serial_seconds = time.perf_counter() - start
        row = {
            "n": n,
            "w": w,
            "max_memory_bytes": budget,
            "shards": len(shards),
            "pairs_total": int(sum(shard_pairs)),
            "serial_seconds": float(serial_seconds),
            "serial_chunk_width": serial.chunk_width,
            "serial_workspace_bytes": int(serial.workspace_bytes),
            "runs": [],
        }
        for jobs in jobs_list:
            start = time.perf_counter()
            sharded = matrix_profile(
                values, w, max_memory_bytes=budget, jobs=jobs
            )
            seconds = time.perf_counter() - start
            if not (
                np.array_equal(serial.profile, sharded.profile)
                and np.array_equal(serial.indices, sharded.indices)
            ):
                raise AssertionError(
                    f"jobs={jobs} diverged from the serial sweep at n={n}"
                )
            if sharded.shards != len(shards):
                raise AssertionError(
                    f"shard plan changed under jobs={jobs} at n={n}: "
                    f"{sharded.shards} != {len(shards)}"
                )
            if sharded.workspace_bytes * jobs > budget:
                raise AssertionError(
                    f"per-worker workspace {sharded.workspace_bytes} x "
                    f"{jobs} jobs exceeds the {budget} byte budget"
                )
            row["runs"].append(
                {
                    "jobs": int(jobs),
                    "seconds": float(seconds),
                    "worker_workspace_bytes": int(sharded.workspace_bytes),
                    "speedup_measured": _ratio(serial_seconds, seconds),
                    "speedup_modeled": float(
                        _parallel_model(shard_pairs, jobs)
                    ),
                    "identical": True,
                }
            )
        results.append(row)
    return {"w": w, "cpu_count": os.cpu_count(), "results": results}


# ---------------------------------------------------------------------------
# streaming: incremental matrix profile appends + replay throughput

_STREAMING_BOUNDED_HISTORY = 2_048
_STREAMING_QUICK_BOUNDED_HISTORY = 1_024


def _bench_streaming(quick: bool, repeats: int, w: int) -> dict:
    from .detectors import matrix_profile
    from .stream import StreamingMatrixProfile, replay
    from .types import LabeledSeries, Labels

    sizes = (2_000, 8_000) if quick else (4_000, 16_000)
    history = (
        _STREAMING_QUICK_BOUNDED_HISTORY
        if quick
        else _STREAMING_BOUNDED_HISTORY
    )
    results = []
    for n in sizes:
        values = _walk(n)

        streamed = {}

        def stream_unbounded():
            profile = StreamingMatrixProfile(w)
            profile.append(values)
            streamed["profile"] = profile
            return profile

        def stream_bounded():
            profile = StreamingMatrixProfile(w, max_history=history)
            profile.append(values)
            profile.drain_egress()
            return profile

        seconds = _timed(stream_unbounded, repeats)
        bounded_seconds = _timed(stream_bounded, repeats)
        batch = {}

        def batch_profile():
            batch["result"] = matrix_profile(values, w, with_indices=False)
            return batch["result"]

        batch_seconds = _timed(batch_profile, repeats)
        # parity: streaming vs batch are two *independently* approximate
        # kernels, each within 1e-8 of truth in correlation space, so
        # their mutual divergence can legitimately reach twice the
        # single-kernel contract (same margin the MERLIN cross-check
        # uses); the timed closures already produced both profiles
        got = streamed["profile"].profile()
        expected = batch["result"].profile
        finite = np.isfinite(expected)
        if not np.array_equal(np.isinf(got), np.isinf(expected)):
            raise AssertionError(
                f"streaming profile inf pattern diverged at n={n}"
            )
        parity = (
            float(np.abs(got[finite] ** 2 - expected[finite] ** 2).max())
            if finite.any()
            else 0.0
        )
        if parity > 4.0 * w * 1e-8:
            raise AssertionError(
                f"streaming profile outside twice the correlation-space "
                f"contract at n={n}: sq err {parity:.3e}"
            )
        results.append(
            {
                "n": n,
                "w": w,
                "seconds": seconds,
                "per_append_us": 1e6 * seconds / n,
                "bounded_history": history,
                "bounded_seconds": bounded_seconds,
                "bounded_per_append_us": 1e6 * bounded_seconds / n,
                "batch_seconds": batch_seconds,
                "stream_vs_batch": _ratio(seconds, batch_seconds),
                "parity_max_sq_err": parity,
            }
        )

    # replay throughput: a registry detector streamed through the
    # generic adapter in micro-batches over a bounded window
    n = 4_000
    rng = np.random.default_rng(_SEED)
    values = np.sin(2 * np.pi * np.arange(n) / 160) + 0.05 * rng.standard_normal(n)
    start = 3 * n // 4
    values[start : start + 8] += 10.0
    series = LabeledSeries(
        "bench-replay",
        values,
        Labels.single(n, start, start + 8),
        train_len=n // 4,
    )
    batch_size, replay_window = 64, 512
    replayed = {}

    def run_replay():
        replayed["trace"] = replay(
            series, "diff", batch_size=batch_size, window=replay_window
        )
        return replayed["trace"]

    replay_seconds = _timed(run_replay, repeats)
    trace = replayed["trace"]
    points_streamed = n - series.train_len
    return {
        "w": w,
        "results": results,
        "replay": {
            "detector": "diff",
            "n": n,
            "batch_size": batch_size,
            "window": replay_window,
            "points_streamed": points_streamed,
            "seconds": replay_seconds,
            "points_per_second": _ratio(points_streamed, replay_seconds),
            "correct": trace.correct,
            "delay": trace.delay,
        },
    }


# ---------------------------------------------------------------------------
# serve: the multi-tenant service under interleaved load


def _bench_serve(quick: bool) -> dict:
    """Drive the serve tier: N interleaved UCR-sim streams, in-process.

    Unlike the other sections this is a single load run, not a median of
    repeats — the run itself is thousands of appends whose latencies are
    measured individually, so the p50/p99 digest already aggregates far
    more samples than a repeat loop would.
    """
    from .serve import LoadConfig, run_load

    config = (
        LoadConfig(
            streams=100,
            tenants=8,
            shards=2,
            unique_series=8,
            snapshot_checks=2,
        )
        if quick
        else LoadConfig(
            streams=1_000,
            tenants=32,
            shards=4,
            unique_series=24,
            snapshot_checks=5,
        )
    )
    result = run_load(config)
    return result.to_json()


# ---------------------------------------------------------------------------
# obs: what the instrumentation itself costs


def _bench_obs(quick: bool, repeats: int, w: int) -> dict:
    """Price the telemetry layer on the kernel hot path.

    Three timings of the same profile: the sweep+finalize pipeline with
    no telemetry calls at all (``bare``), through
    :func:`matrix_profile` with the shipped *disabled* tracer
    (``disabled`` — the default every untraced run pays), and inside an
    enabled tracing session (``enabled`` — what ``--trace`` costs).
    The disabled-vs-bare gap is the advisory
    ``obs_disabled_overhead_pct`` check: instrumentation must stay
    within a few percent when nobody asked for it.  Span and counter
    microbenchmarks give the per-operation prices behind those totals.
    """
    from .detectors import matrix_profile
    from .detectors.matrix_profile import (
        _diagonal_sweep,
        _finalize,
        _resolve_chunk,
        _validated,
    )
    from .detectors.sliding import SlidingStats
    from .obs import MetricsRegistry, Tracer, tracing_session

    n = 8_192 if quick else 20_000
    values = _walk(n)
    stats = SlidingStats(values)
    # overhead is a small difference of two medians; extra repeats keep
    # scheduler noise from swamping the few registry/tracer calls
    reps = max(repeats, 5)

    def bare():
        s, exclusion = _validated(values, w, None, stats)
        mean, inv, constant = s.kernel_stats(w)
        chunk = _resolve_chunk(
            s.n - w + 1, exclusion, None, None, need_indices=False
        )
        best, bestj, _ = _diagonal_sweep(
            s.shifted, w, exclusion, mean, inv,
            need_indices=False, chunk=chunk,
        )
        return _finalize(best, bestj, w, exclusion, constant)

    def disabled():
        return matrix_profile(values, w, stats=stats, with_indices=False)

    def enabled():
        with tracing_session():
            return matrix_profile(values, w, stats=stats, with_indices=False)

    # warm every variant once first: the first sweep of the session pays
    # allocator/cache warmup that would otherwise be billed to whichever
    # variant happens to run first
    if not np.array_equal(bare()[0], disabled().profile):
        raise AssertionError("instrumented kernel changed the profile")
    enabled()
    # interleave the variants round-robin rather than timing each in a
    # contiguous block: on a busy (or thermally drifting) host a block
    # layout bills any monotonic slowdown to whichever variant ran
    # first, which dwarfs the few-percent signal being measured
    runs: dict[str, list[float]] = {"bare": [], "disabled": [], "enabled": []}
    for _ in range(reps):
        for label, fn in (("bare", bare), ("disabled", disabled),
                          ("enabled", enabled)):
            start = time.perf_counter()
            fn()
            runs[label].append(time.perf_counter() - start)
    bare_seconds = float(median(runs["bare"]))
    disabled_seconds = float(median(runs["disabled"]))
    enabled_seconds = float(median(runs["enabled"]))

    iters = 20_000 if quick else 100_000
    off = Tracer(enabled=False)

    def spans_disabled():
        for _ in range(iters):
            with off.span("bench.noop"):
                pass

    def spans_enabled():
        tracer = Tracer(enabled=True)
        for _ in range(iters):
            with tracer.span("bench.noop"):
                pass

    counter = MetricsRegistry().counter("bench_counter")

    def counter_incs():
        for _ in range(iters):
            counter.inc()

    span_disabled = _timed(spans_disabled, repeats)
    span_enabled = _timed(spans_enabled, repeats)
    counter_inc = _timed(counter_incs, repeats)
    return {
        "n": n,
        "w": w,
        "kernel_bare_seconds": bare_seconds,
        "kernel_disabled_seconds": disabled_seconds,
        "kernel_enabled_seconds": enabled_seconds,
        "disabled_overhead_pct": 100.0
        * (_ratio(disabled_seconds, bare_seconds) - 1.0),
        "enabled_overhead_pct": 100.0
        * (_ratio(enabled_seconds, bare_seconds) - 1.0),
        "span_iters": iters,
        "span_disabled_ns": 1e9 * span_disabled / iters,
        "span_enabled_ns": 1e9 * span_enabled / iters,
        "counter_inc_ns": 1e9 * counter_inc / iters,
    }


# ---------------------------------------------------------------------------
# watch: what self-monitoring costs, and that it actually alarms


def _bench_watch(quick: bool, repeats: int, w: int) -> dict:
    """Price the watch layer and prove its alerting contract.

    Three measurements: (1) the cost of one watch tick — sample every
    series of a serve-shaped registry and evaluate the stock rules —
    on a deterministic schedule; (2) the idle overhead a background
    watcher imposes on the kernel hot path, measured round-robin like
    the obs section so host drift cannot masquerade as overhead; and
    (3) a scripted queue-saturation scenario asserting the default
    rule fires after its debounce and never before — the determinism
    claim, re-proven on every trajectory point.
    """
    import threading

    from .detectors import matrix_profile
    from .obs import AlertManager, MetricsRegistry, SeriesSampler
    from .serve.shard import default_watch_rules

    def serve_shaped_registry() -> MetricsRegistry:
        registry = MetricsRegistry()
        for index in range(8):
            tenant = f"t{index:03d}"
            registry.counter("serve_points_ingested", tenant=tenant).inc(100)
            registry.counter("serve_append_batches", tenant=tenant).inc(10)
            registry.counter("serve_rejected", tenant=tenant).inc(0)
            histogram = registry.histogram(
                "serve_append_seconds", tenant=tenant
            )
            for step in range(32):
                histogram.observe(0.0005 * (step + 1))
        for shard in range(4):
            registry.gauge("serve_queue_depth", shard=f"shard-{shard}").set(3)
        return registry

    # -- 1) tick cost on a deterministic schedule ---------------------
    iters = 200 if quick else 1_000
    reps = max(repeats, 3)

    def run_ticks() -> None:
        run_registry = serve_shaped_registry()
        sampler = SeriesSampler(run_registry, capacity=256)
        manager = AlertManager(sampler, default_watch_rules(1024))
        for tick in range(iters):
            manager.tick(now=float(tick))

    tick_seconds, tick_runs = _timed_runs(run_ticks, reps)
    tick_us = 1e6 * tick_seconds / iters
    probe = SeriesSampler(serve_shaped_registry(), capacity=2)
    probe.sample(now=0.0)
    series_sampled = len(probe.keys())

    # -- 2) idle overhead on the kernel hot path ----------------------
    n = 8_192 if quick else 20_000
    values = _walk(n)
    # 20 ticks/s is already ~100x denser than a real scrape interval;
    # it stresses the hot path without manufacturing GIL contention a
    # deployment would never see
    watch_interval = 0.05

    def kernel():
        return matrix_profile(values, w, with_indices=False)

    watched_registry = serve_shaped_registry()
    watched_sampler = SeriesSampler(watched_registry, capacity=256)
    watched_manager = AlertManager(
        watched_sampler, default_watch_rules(1024)
    )
    kernel()  # warm caches before either variant is billed
    runs: "dict[str, list[float]]" = {"off": [], "watched": []}
    for _ in range(reps):
        start = time.perf_counter()
        kernel()
        runs["off"].append(time.perf_counter() - start)
        stop = threading.Event()

        def watcher() -> None:
            while not stop.wait(watch_interval):
                watched_manager.tick()

        thread = threading.Thread(target=watcher, daemon=True)
        thread.start()
        try:
            start = time.perf_counter()
            kernel()
            runs["watched"].append(time.perf_counter() - start)
        finally:
            stop.set()
            thread.join()
    off_seconds = float(median(runs["off"]))
    watched_seconds = float(median(runs["watched"]))
    _NOISE_LOG.append(list(runs["off"]))
    _NOISE_LOG.append(list(runs["watched"]))

    # -- 3) scripted saturation scenario ------------------------------
    scenario_registry = MetricsRegistry()
    depth = scenario_registry.gauge("serve_queue_depth", shard="shard-0")
    scenario = AlertManager(
        SeriesSampler(scenario_registry, capacity=64),
        default_watch_rules(100),
    )
    false_firings = 0
    fired_at = None
    timeline = [10.0] * 5 + [95.0] * 3  # steady state, then saturation
    injection_tick = 5
    for tick, value in enumerate(timeline):
        depth.set(value)
        for transition in scenario.tick(now=float(tick)):
            if transition["to"] != "firing":
                continue
            if tick < injection_tick:
                false_firings += 1
            elif fired_at is None:
                fired_at = tick
    return {
        "n": n,
        "w": w,
        "tick_iters": iters,
        "tick_us": tick_us,
        "tick_us_runs": [
            round(1e6 * run / iters, 3) for run in tick_runs
        ],
        "series_sampled": series_sampled,
        "rules": [rule.name for rule in scenario.rules],
        "watch_interval_seconds": watch_interval,
        "kernel_off_seconds": off_seconds,
        "kernel_watched_seconds": watched_seconds,
        "idle_overhead_pct": 100.0
        * (_ratio(watched_seconds, off_seconds) - 1.0),
        "saturation": {
            "timeline": timeline,
            "injection_tick": injection_tick,
            "fired_at_tick": fired_at,
            "false_firings": false_firings,
        },
    }


# ---------------------------------------------------------------------------
# drift: the refit-policy trade-off under concept drift


def _bench_drift(quick: bool, config=None) -> dict:
    """Record the drift ablation as this trajectory's measured point.

    Replays the drift scenarios (step/ramp/variance/period regime
    changes plus stationary controls) through raw-distance kNN under
    the default refit-policy line-up (never / fixed cadence /
    drift-triggered / hybrid) and reports the delay-aware trade-off —
    see :mod:`repro.drift.ablation`.  The headline check is that a
    triggered policy beats the fixed cadence on delay-aware accuracy
    while staying quiet on the stationary controls.
    """
    from .drift import DriftSimConfig, drift_ablation

    if config is None:
        config = (
            DriftSimConfig(n=2400, per_kind=1, stationary=2)
            if quick
            else DriftSimConfig()
        )
    start = time.perf_counter()
    result = drift_ablation(config=config)
    result["seconds"] = time.perf_counter() - start
    return result


# ---------------------------------------------------------------------------
# harness


def run_bench(
    quick: bool = False,
    repeats: int | None = None,
    sections: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
    naive_rows: int = 256,
    max_memory_bytes: int | None = None,
    scaling_sizes: tuple[int, ...] | None = None,
    scaling_pair_cap: int | None = None,
    anytime_fractions: tuple[float, ...] | None = None,
    parallel_cases: tuple[tuple[int, tuple[int, ...]], ...] | None = None,
    drift_config=None,
) -> dict:
    """Run the selected sections and return the machine-readable report.

    ``max_memory_bytes`` is the kernel workspace budget the ``scaling``
    and ``parallel`` sections hand to the column-chunked sweep (default
    128 MiB); ``scaling_sizes``/``scaling_pair_cap`` shrink the scaling
    section for tests.  ``anytime_fractions`` overrides the anytime
    section's coverage grid (``repro bench --approx``);
    ``parallel_cases`` is ``((n, (jobs, ...)), ...)`` for the parallel
    section — tests shrink it, the full default ends at n = 10⁶.
    ``drift_config`` is a :class:`repro.drift.DriftSimConfig` override
    for the drift section, likewise a test-shrinking knob.
    """
    chosen = SECTIONS if sections is None else tuple(sections)
    unknown = set(chosen) - set(SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown bench sections {sorted(unknown)}; "
            f"available: {', '.join(SECTIONS)}"
        )
    if repeats is None:
        repeats = 3 if quick else 5
    if sizes is None:
        sizes = _QUICK_SIZES if quick else _FULL_SIZES
    w = _QUICK_W if quick else _FULL_W
    _NOISE_LOG.clear()  # host noise floor is per-report

    report: dict = {
        "schema": "repro-bench/1",
        "label": BENCH_LABEL,
        "quick": quick,
        "repeats": repeats,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "sections": {},
        "checks": {},
    }
    if "kernel" in chosen:
        kernel = _bench_kernel(sizes, w, repeats, naive_rows)
        report["sections"]["kernel"] = kernel
        top = kernel["results"][-1]
        report["checks"]["kernel_speedup_vs_naive"] = top["speedup_vs_naive"]
        report["checks"]["kernel_speedup_vs_stomp"] = top["speedup_vs_stomp"]
    if "merlin" in chosen:
        merlin = _bench_merlin(quick, repeats)
        report["sections"]["merlin"] = merlin
        report["checks"]["merlin_speedup"] = merlin["speedup_with_abandon"]
    if "knn" in chosen:
        report["sections"]["knn"] = _bench_knn(quick, repeats, w)
    if "oneliner" in chosen:
        report["sections"]["oneliner"] = _bench_oneliner(quick, repeats)
    if "engine" in chosen:
        report["sections"]["engine"] = _bench_engine(quick, repeats)
    if "scaling" in chosen:
        scaling = _bench_scaling(
            quick,
            repeats,
            max_memory_bytes=max_memory_bytes,
            sizes=scaling_sizes,
            pair_cap=scaling_pair_cap,
        )
        report["sections"]["scaling"] = scaling
        top = scaling["results"][-1]
        report["checks"]["scaling_peak_bytes"] = top["tracemalloc_peak_bytes"]
        report["checks"]["scaling_within_target"] = bool(
            top["tracemalloc_peak_bytes"] + top["series_bytes"]
            <= scaling["target_peak_bytes"]
        )
    if "streaming" in chosen:
        streaming = _bench_streaming(quick, repeats, w)
        report["sections"]["streaming"] = streaming
        rows = streaming["results"]
        report["checks"]["streaming_parity_sq_err"] = max(
            row["parity_max_sq_err"] for row in rows
        )
        # sub-linear claim: the bounded-history per-append cost must not
        # track the stream length the way the unbounded cost does
        size_ratio = rows[-1]["n"] / rows[0]["n"]
        cost_ratio = _ratio(
            rows[-1]["bounded_per_append_us"], rows[0]["bounded_per_append_us"]
        )
        report["checks"]["streaming_size_ratio"] = size_ratio
        report["checks"]["streaming_bounded_cost_ratio"] = cost_ratio
        report["checks"]["streaming_bounded_sublinear"] = bool(
            cost_ratio < size_ratio
        )
    if "serve" in chosen:
        serve = _bench_serve(quick)
        report["sections"]["serve"] = serve
        report["checks"]["serve_streams"] = serve["streams"]
        report["checks"]["serve_points_per_second"] = serve[
            "points_per_second"
        ]
        report["checks"]["serve_p99_ms"] = serve["append_p99_ms"]
        report["checks"]["serve_snapshot_parity"] = serve["snapshot_parity"]
        report["checks"]["serve_rejections"] = serve["rejections"]
    if "obs" in chosen:
        obs = _bench_obs(quick, repeats, w)
        report["sections"]["obs"] = obs
        # advisory: disabled instrumentation must stay within a few
        # percent of the bare kernel (negative = within timing noise)
        report["checks"]["obs_disabled_overhead_pct"] = obs[
            "disabled_overhead_pct"
        ]
        report["checks"]["obs_disabled_overhead_ok"] = bool(
            obs["disabled_overhead_pct"] < 5.0
        )
    if "watch" in chosen:
        watch = _bench_watch(quick, repeats, w)
        report["sections"]["watch"] = watch
        report["checks"]["watch_tick_us"] = watch["tick_us"]
        # advisory, mirroring the obs gate: a sleeping watcher thread
        # must not tax the kernel hot path beyond timing noise
        report["checks"]["watch_idle_overhead_pct"] = watch[
            "idle_overhead_pct"
        ]
        report["checks"]["watch_idle_overhead_ok"] = bool(
            watch["idle_overhead_pct"] < 5.0
        )
        saturation = watch["saturation"]
        report["checks"]["watch_saturation_fires"] = bool(
            saturation["fired_at_tick"] is not None
        )
        report["checks"]["watch_false_firings"] = saturation[
            "false_firings"
        ]
    if "anytime" in chosen:
        anytime = _bench_anytime(quick, fractions=anytime_fractions)
        report["sections"]["anytime"] = anytime
        # the headline claim: on the periodic fixture, the bound is
        # within 1e-3 mean corr-space deviation inside 10% of the pair
        # budget.  Judged on fraction_swept (what actually ran, after
        # block rounding), not on the requested fraction.
        periodic = next(
            f for f in anytime["fixtures"] if f["fixture"] == "periodic"
        )
        in_budget = [
            row
            for row in periodic["results"]
            if row["fraction_swept"] <= 0.10
        ]
        best = min(in_budget, key=lambda row: row["mean_dev"], default=None)
        if best is not None:
            report["checks"]["anytime_mean_dev"] = best["mean_dev"]
            report["checks"]["anytime_fraction_swept"] = best[
                "fraction_swept"
            ]
            report["checks"]["anytime_converged"] = bool(
                best["mean_dev"] <= 1e-3
            )
        # the bound/monotonicity properties raise inside the section,
        # so reaching this line means they held on every fixture
        report["checks"]["anytime_bound_held"] = True
    if "parallel" in chosen:
        par = _bench_parallel(
            quick, cases=parallel_cases, max_memory_bytes=max_memory_bytes
        )
        report["sections"]["parallel"] = par
        top = par["results"][-1]
        run = top["runs"][-1]
        report["checks"]["parallel_identical"] = True  # asserted per run
        report["checks"]["parallel_n"] = top["n"]
        report["checks"]["parallel_jobs"] = run["jobs"]
        report["checks"]["parallel_speedup_measured"] = run[
            "speedup_measured"
        ]
        report["checks"]["parallel_speedup_modeled"] = run["speedup_modeled"]
        # the headline target is >= 3x at jobs=4, i.e. 75% parallel
        # efficiency — scaled by jobs so a 2-worker quick run is judged
        # against 1.5x, not an unreachable 3x.  A host with fewer cores
        # than jobs cannot measure any speedup; there the modeled
        # critical path is the honest judgement, and cpu_count in env
        # says which case this report is.
        cores = par["cpu_count"] or 1
        target = 0.75 * run["jobs"]
        report["checks"]["parallel_speedup_target"] = target
        report["checks"]["parallel_speedup_ok"] = bool(
            run["speedup_measured"] >= target
            if cores >= run["jobs"]
            else run["speedup_modeled"] >= target
        )
    if "drift" in chosen:
        drift = _bench_drift(quick, config=drift_config)
        report["sections"]["drift"] = drift
        rows = drift["policies"]
        fixed_acc = rows["fixed"]["delay_accuracy"]
        triggered = {
            key: rows[key] for key in ("drift", "hybrid") if key in rows
        }
        best_key = max(
            triggered, key=lambda key: triggered[key]["delay_accuracy"]
        )
        report["checks"]["drift_fixed_delay_accuracy"] = fixed_acc
        report["checks"]["drift_best_triggered"] = best_key
        report["checks"]["drift_triggered_delay_accuracy"] = triggered[
            best_key
        ]["delay_accuracy"]
        report["checks"]["drift_triggered_beats_fixed"] = bool(
            triggered[best_key]["delay_accuracy"] > fixed_acc
        )
        # false-alarm axis, mirroring the property-test bound: the
        # season-matched trigger detector must stay (near) silent on
        # the stationary controls
        stationary_triggers = int(
            sum(row["stationary"]["triggers"] for row in triggered.values())
        )
        report["checks"]["drift_stationary_triggers"] = stationary_triggers
        report["checks"]["drift_stationary_quiet"] = bool(
            stationary_triggers <= 1
        )
    # uniform host block: lets ``repro bench compare`` refuse cross-host
    # comparisons and scale its noise allowance to this machine's actual
    # run-to-run jitter instead of a guessed constant
    host = _host_block()
    host["timing_noise_pct"] = _timing_noise_pct()
    report["host"] = host
    return report


def write_bench(report: dict, path: str) -> str:
    """Write the report as pretty JSON, creating parent directories."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_bench(report: dict) -> str:
    """Human-readable summary of a bench report."""
    lines = [
        f"repro bench ({'quick' if report['quick'] else 'full'}, "
        f"median of {report['repeats']}) — numpy {report['env']['numpy']}, "
        f"{report['env']['cpu_count']} cpu(s)"
    ]
    kernel = report["sections"].get("kernel")
    if kernel:
        lines.append("")
        lines.append(
            f"{'kernel (w=%d)' % kernel['w']:<24} {'mpx':>9} {'stomp':>9} "
            f"{'naive':>10} {'vs stomp':>9} {'vs naive':>9}"
        )
        for row in kernel["results"]:
            naive = f"{row['naive_seconds']:.2f}s" + (
                "*" if row["naive_estimated"] else ""
            )
            lines.append(
                f"  n={row['n']:<20} {row['mpx_seconds']:>8.3f}s "
                f"{row['stomp_seconds']:>8.2f}s {naive:>10} "
                f"{row['speedup_vs_stomp']:>8.1f}x {row['speedup_vs_naive']:>8.1f}x"
            )
        if any(row["naive_estimated"] for row in kernel["results"]):
            lines.append("  (* extrapolated from a timed slice of rows)")
    merlin = report["sections"].get("merlin")
    if merlin:
        lines.append("")
        lines.append(
            f"MERLIN {merlin['series']} (n={merlin['n']}, "
            f"w={merlin['min_w']}..{merlin['max_w']}): "
            f"{merlin['before_seconds']:.2f}s -> {merlin['after_seconds']:.2f}s "
            f"({merlin['speedup']:.1f}x), with early abandon "
            f"{merlin['after_abandon_seconds']:.2f}s "
            f"({merlin['speedup_with_abandon']:.1f}x)"
        )
    knn = report["sections"].get("knn")
    if knn:
        lines.append("")
        lines.append(
            f"kNN (n={knn['n']}, w={knn['w']}): full score "
            f"{knn['full_score_legacy_seconds']:.3f}s -> "
            f"{knn['full_score_seconds']:.3f}s "
            f"({knn['full_score_speedup']:.2f}x); short segment "
            f"{knn['short_score_legacy_seconds'] * 1e3:.1f}ms -> "
            f"{knn['short_score_seconds'] * 1e3:.1f}ms "
            f"({knn['short_score_speedup']:.1f}x)"
        )
    oneliner = report["sections"].get("oneliner")
    if oneliner:
        lines.append("")
        lines.append(
            f"movmax (n={oneliner['n']}, k={oneliner['k']}): "
            f"{oneliner['movmax_legacy_seconds']:.2f}s -> "
            f"{oneliner['movmax_seconds']:.3f}s ({oneliner['speedup']:.0f}x)"
        )
    engine = report["sections"].get("engine")
    if engine:
        lines.append("")
        lines.append(
            f"engine grid ({engine['cells']} cells, "
            f"{engine['total_points']} points): {engine['seconds']:.2f}s"
        )
    scaling = report["sections"].get("scaling")
    if scaling:
        mib = 1 << 20
        lines.append("")
        lines.append(
            f"scaling (w={scaling['w']}, kernel budget "
            f"{scaling['max_memory_bytes'] // mib}MiB, end-to-end target "
            f"{scaling['target_peak_bytes'] // mib}MiB)"
        )
        for row in scaling["results"]:
            seconds = f"{row['seconds']:.1f}s" + (
                "*" if row["seconds_estimated"] else ""
            )
            lines.append(
                f"  n={row['n']:<9} chunk={row['chunk_width']:<7} "
                f"workspace {row['chunked_workspace_bytes'] // mib}MiB "
                f"(unchunked {row['unchunked_workspace_bytes'] // mib}MiB)  "
                f"peak {row['tracemalloc_peak_bytes'] // mib}MiB  {seconds}"
            )
        if any(row["seconds_estimated"] for row in scaling["results"]):
            lines.append(
                "  (* extrapolated by pair count from a timed slice of "
                "diagonals)"
            )
    streaming = report["sections"].get("streaming")
    if streaming:
        lines.append("")
        lines.append(
            f"{'streaming (w=%d)' % streaming['w']:<24} "
            f"{'append':>10} {'bounded':>10} {'batch':>9} {'parity':>10}"
        )
        for row in streaming["results"]:
            lines.append(
                f"  n={row['n']:<20} {row['per_append_us']:>8.1f}us "
                f"{row['bounded_per_append_us']:>8.1f}us "
                f"{row['batch_seconds']:>8.3f}s "
                f"{row['parity_max_sq_err']:>10.1e}"
            )
        replay = streaming.get("replay")
        if replay:
            lines.append(
                f"  replay {replay['detector']} (n={replay['n']}, batch "
                f"{replay['batch_size']}, window {replay['window']}): "
                f"{replay['points_per_second']:.0f} points/s, "
                f"delay {replay['delay']}"
            )
    serve = report["sections"].get("serve")
    if serve:
        lines.append("")
        parity = (
            "n/a"
            if serve["snapshot_parity"] is None
            else ("ok" if serve["snapshot_parity"] else "FAILED")
        )
        p99 = (
            "-"
            if serve["append_p99_ms"] is None
            else f"{serve['append_p99_ms']:.1f}ms"
        )
        nab = (
            "-"
            if serve["nab_windowed"] is None
            else f"{serve['nab_windowed']:.1f}"
        )
        lines.append(
            f"serve ({serve['streams']} streams, {serve['tenants']} "
            f"tenants, {serve['shards']} shards, batch "
            f"{serve['batch_size']}): "
            f"{serve['points_per_second']:.0f} points/s, p99 {p99}, "
            f"{serve['rejections']} rejections, snapshot parity {parity}"
        )
        lines.append(
            f"  delay-acc {serve['accuracy']:.1%}, nab-windowed {nab} over "
            f"{serve['points_streamed']} streamed points"
        )
    obs = report["sections"].get("obs")
    if obs:
        lines.append("")
        lines.append(
            f"obs (kernel n={obs['n']}, w={obs['w']}): bare "
            f"{obs['kernel_bare_seconds']:.3f}s, disabled tracer "
            f"{obs['kernel_disabled_seconds']:.3f}s "
            f"({obs['disabled_overhead_pct']:+.1f}%), enabled "
            f"{obs['kernel_enabled_seconds']:.3f}s "
            f"({obs['enabled_overhead_pct']:+.1f}%)"
        )
        lines.append(
            f"  span disabled {obs['span_disabled_ns']:.0f}ns, enabled "
            f"{obs['span_enabled_ns']:.0f}ns, counter inc "
            f"{obs['counter_inc_ns']:.0f}ns"
        )
    watch = report["sections"].get("watch")
    if watch:
        lines.append("")
        saturation = watch["saturation"]
        fired = (
            "never fired"
            if saturation["fired_at_tick"] is None
            else f"fired at tick {saturation['fired_at_tick']}"
        )
        lines.append(
            f"watch ({watch['series_sampled']} series, "
            f"{len(watch['rules'])} rules): tick {watch['tick_us']:.0f}us, "
            f"kernel idle overhead {watch['idle_overhead_pct']:+.1f}% "
            f"(n={watch['n']})"
        )
        lines.append(
            f"  saturation scenario: {fired} (injected at tick "
            f"{saturation['injection_tick']}), "
            f"{saturation['false_firings']} false firings"
        )
    anytime = report["sections"].get("anytime")
    if anytime:
        lines.append("")
        lines.append(
            f"anytime (n={anytime['n']}, w={anytime['w']}): corr-space "
            f"deviation of the approx= upper bound"
        )
        for fixture in anytime["fixtures"]:
            lines.append(
                f"  {fixture['fixture']:<9} exact "
                f"{fixture['exact_seconds']:.1f}s"
            )
            for row in fixture["results"]:
                mark = "=" if row["discord_match"] else " "
                lines.append(
                    f"    {row['fraction_swept']:>6.1%} of pairs  "
                    f"{row['seconds']:>6.2f}s  mean {row['mean_dev']:.1e}  "
                    f"p99 {row['p99_dev']:.1e}  max {row['max_dev']:.1e}  "
                    f"discord{mark}"
                )
    parallel = report["sections"].get("parallel")
    if parallel:
        lines.append("")
        lines.append(
            f"parallel (w={parallel['w']}, {parallel['cpu_count']} cpu(s)): "
            f"full exact sweeps, bit-identity asserted"
        )
        for row in parallel["results"]:
            lines.append(
                f"  n={row['n']:<9} serial {row['serial_seconds']:.1f}s "
                f"({row['shards']} shards)"
            )
            for run in row["runs"]:
                lines.append(
                    f"    jobs={run['jobs']}  {run['seconds']:>8.1f}s  "
                    f"{run['speedup_measured']:.2f}x measured, "
                    f"{run['speedup_modeled']:.2f}x critical-path model"
                )
    drift = report["sections"].get("drift")
    if drift:
        from .drift import format_drift_ablation

        lines.append("")
        lines.append(format_drift_ablation(drift))
    return "\n".join(lines)
