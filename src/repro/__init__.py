"""repro — reproduction of Wu & Keogh (ICDE 2022).

"Current Time Series Anomaly Detection Benchmarks are Flawed and are
Creating the Illusion of Progress."

Public surface:

* :mod:`repro.oneliner` — the one-liner triviality engine (Definition 1,
  families (1)-(6), brute-force search, Table 1 report).
* :mod:`repro.scoring` — point / range-based / NAB / UCR scoring.
* :mod:`repro.detectors` — baselines, discords (matrix profile, MERLIN),
  Telemanom-style forecaster, statistical detectors.
* :mod:`repro.datasets` — seeded simulators of the Yahoo, Numenta, NASA,
  OMNI/SMD benchmarks and of UCR-archive-style data.
* :mod:`repro.flaws` — the four-flaw audit (triviality, density,
  mislabeling, run-to-failure).
* :mod:`repro.archive` — UCR anomaly-archive builder and validator.
* :mod:`repro.analysis` — invariance experiments (Fig 13).
* :mod:`repro.runner` — parallel evaluation engine with a
  content-addressed result cache and reproducible run manifests.
* :mod:`repro.stream` — online/streaming subsystem: incremental matrix
  profile with bounded-memory egress, streaming adapters for every
  registry detector, the replay engine (arrival-time scores, commit
  latency) and delay-aware scoreboards behind ``repro stream``.
* :mod:`repro.stats` — statistical comparison engine: bootstrap CIs,
  paired permutation tests, Friedman/Nemenyi rank analysis and the
  one-liner noise floor behind ``repro compare``.
* :mod:`repro.bench` — the ``repro bench`` perf harness: times the mpx
  kernel against the retained reference kernels, measures the
  bounded-memory scaling envelope, and writes the machine-readable
  ``benchmarks/perf/BENCH_<n>.json`` trajectory point (the name derives
  from :data:`repro.bench.TRAJECTORY`).

See ``docs/`` for the architecture map (``docs/architecture.md``), the
matrix-profile kernel internals (``docs/kernel.md``) and the generated
CLI reference (``docs/cli.md``).
"""

from .types import AnomalyRegion, Archive, LabeledSeries, Labels

__version__ = "1.0.0"

__all__ = [
    "AnomalyRegion",
    "Labels",
    "LabeledSeries",
    "Archive",
    "__version__",
]
