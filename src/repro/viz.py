"""Terminal visualization helpers.

The paper argues (§4.3) that TSAD research must *look at the data*.  This
environment has no plotting stack, so the benches and examples render
series, anomaly-score overlays and histograms as compact ASCII panels.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .types import Labels

__all__ = ["sparkline", "ascii_plot", "ascii_histogram", "label_ruler"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _resample(values: np.ndarray, width: int, how: str = "mean") -> np.ndarray:
    """Bucket ``values`` into ``width`` bins using mean/max per bin."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.zeros(width)
    edges = np.linspace(0, values.size, width + 1).astype(int)
    out = np.empty(width)
    for i in range(width):
        lo, hi = edges[i], max(edges[i + 1], edges[i] + 1)
        chunk = values[lo:hi]
        out[i] = chunk.max() if how == "max" else chunk.mean()
    return out


def sparkline(values: np.ndarray, width: int = 80, how: str = "mean") -> str:
    """One-row unicode sparkline of ``values`` resampled to ``width``."""
    data = _resample(values, width, how)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return " " * width
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    chars = []
    for value in data:
        if not np.isfinite(value):
            chars.append("?")
            continue
        level = int((value - lo) / span * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[level])
    return "".join(chars)


def label_ruler(labels: Labels, width: int = 80) -> str:
    """One-row ruler marking labeled anomaly regions with ``#``."""
    mask = labels.to_mask().astype(float)
    data = _resample(mask, width, how="max")
    return "".join("#" if value > 0 else "." for value in data)


def ascii_plot(
    values: np.ndarray,
    labels: Labels | None = None,
    width: int = 80,
    height: int = 8,
    title: str = "",
) -> str:
    """Multi-row ASCII line plot with an optional anomaly ruler."""
    data = _resample(values, width)
    finite = data[np.isfinite(data)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, value in enumerate(data):
        if not np.isfinite(value):
            continue
        y = int((value - lo) / span * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:.4g}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min={lo:.4g}")
    if labels is not None:
        lines.append(label_ruler(labels, width) + "  (# = labeled anomaly)")
    return "\n".join(lines)


def ascii_histogram(
    counts: Sequence[float],
    bin_labels: Sequence[str] | None = None,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per bin (used for Fig 10)."""
    counts = list(counts)
    peak = max(counts) if counts and max(counts) > 0 else 1.0
    if bin_labels is None:
        bin_labels = [str(i) for i in range(len(counts))]
    label_width = max(len(str(label)) for label in bin_labels) if counts else 0
    lines = [title] if title else []
    for label, count in zip(bin_labels, counts):
        bar = "█" * int(round(count / peak * width))
        lines.append(f"{str(label):>{label_width}} | {bar} {count:g}")
    return "\n".join(lines)
