"""Disk-backed, content-addressed cache for evaluation cells.

A cell is one ``detector spec × series`` evaluation.  Its cache key is
the SHA-256 of everything the answer depends on — detector name and
parameters, the series values and training split, and the scoring
configuration — so a re-run with identical inputs hits, while any change
to a parameter or a single sample value misses.  Only the detector's
*location* is stored; correctness is recomputed from the labels at read
time, which keeps relabeled archives from serving stale verdicts.

Entries are small JSON files sharded by key prefix
(``<dir>/<key[:2]>/<key>.json``), written atomically so a crashed or
concurrent run can never leave a half-written entry that poisons later
runs — a corrupt or unreadable entry simply counts as a miss.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import __version__
from ..detectors import DETECTORS, DetectorSpec
from ..types import LabeledSeries

__all__ = ["cache_key", "resolved_params", "CacheStats", "ResultCache"]


def resolved_params(spec: DetectorSpec) -> dict:
    """Spec params merged over the factory's constructor defaults.

    A spec like ``moving_zscore`` leaves ``k=50`` implicit; resolving
    defaults into the cache key means a later change to that default
    invalidates cached cells instead of silently serving results
    computed with the old value.
    """
    defaults = {}
    factory = DETECTORS.get(spec.name)
    if factory is not None:
        for parameter in inspect.signature(factory).parameters.values():
            if parameter.default is not inspect.Parameter.empty:
                defaults[parameter.name] = parameter.default
    return {**defaults, **dict(spec.params)}


def cache_key(
    spec: DetectorSpec,
    series: LabeledSeries,
    scoring: Mapping | None = None,
) -> str:
    """Content hash of one evaluation cell.

    Covers the detector identity (name + params, with constructor
    defaults resolved), the data the detector sees (values + train
    split), the scoring configuration, and the library version (the
    coarse guard against detector *implementation* changes).  The
    series *name* is deliberately excluded: a renamed but bit-identical
    series is the same computation.  Including the scoring config is
    conservative — stored locations do not depend on it — but it keeps
    the key aligned with the manifest's cell contract; a slop sweep
    recomputes rather than risking cross-protocol reuse.
    """
    header = {
        "library": __version__,
        "detector": {"name": spec.name, "params": resolved_params(spec)},
        "scoring": dict(scoring or {}),
        "train_len": int(series.train_len),
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(header, sort_keys=True, default=str).encode())
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(series.values, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def format(self) -> str:
        return f"cache: {self.hits} hits, {self.misses} misses, {self.stores} stores"


@dataclass
class ResultCache:
    """Content-addressed store mapping cell keys to small JSON payloads."""

    directory: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Payload for ``key``, or None on miss (or corrupt entry)."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Mapping) -> None:
        """Atomically persist ``payload`` (a JSON-able mapping)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # suffix must not be ".json": pathlib's glob matches dotfiles,
        # so a crash-orphaned temp file would otherwise count in len()
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(dict(payload), handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        """Number of persisted entries."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def total_bytes(self) -> int:
        """Disk footprint of all persisted entries, in bytes."""
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("??/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue  # entry evicted concurrently: not our problem
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
