"""Parallel evaluation engine for detector × archive grids.

`EvalEngine` expands a line-up of :class:`DetectorSpec` against an
archive into one task per ``(spec, series)`` cell, resolves what it can
from the content-addressed :class:`ResultCache`, and executes the rest —
serially, or across a ``ProcessPoolExecutor`` with ``jobs > 1``.

Determinism is the design constraint: tasks are enumerated in grid
order (specs in line-up order, series in archive order) and results are
reassembled into that order whatever subset was cached and however the
pool scheduled the remainder, so a parallel run's manifest and
artifacts are byte-identical to a serial run's.  Detectors are built
fresh inside each task from the spec (every detector in the registry is
deterministic given its parameters), which is what makes tasks safe to
ship to worker processes in the first place.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..detectors import DetectorSpec
from ..obs import get_registry, get_tracer, tracing_session
from ..scoring.ucr import UcrOutcome, UcrSummary, ucr_correct
from ..types import Archive, LabeledSeries
from .cache import ResultCache, cache_key
from .manifest import RunManifest, archive_fingerprint

__all__ = [
    "UcrScoring",
    "FractionalScoring",
    "scoring_from_description",
    "CellResult",
    "RunStats",
    "RunReport",
    "EvalEngine",
]


@dataclass(frozen=True)
class UcrScoring:
    """The archive protocol: correct iff inside the region ± slop."""

    minimum_slop: int = 100

    def describe(self) -> dict:
        return {"protocol": "ucr", "minimum_slop": self.minimum_slop}

    def correct(self, series: LabeledSeries, location: int) -> bool:
        return ucr_correct(series, location, self.minimum_slop)


@dataclass(frozen=True)
class FractionalScoring:
    """Hit iff within ``fraction * n`` points of any labeled region.

    The relaxed criterion some multi-anomaly ablations use (e.g. the
    §2.5 last-point study scores hits within 5 % of the series length).
    """

    fraction: float = 0.05

    def describe(self) -> dict:
        return {"protocol": "fractional", "fraction": self.fraction}

    def correct(self, series: LabeledSeries, location: int) -> bool:
        return series.labels.covers(location, slop=int(self.fraction * series.n))


def scoring_from_description(description: dict):
    """Rebuild a scoring protocol object from its ``describe()`` dict.

    The inverse of ``UcrScoring.describe`` / ``FractionalScoring.describe``,
    used when analyses run on saved manifests instead of live engines.
    """
    protocol = dict(description).get("protocol")
    if protocol == "ucr":
        return UcrScoring(minimum_slop=int(description.get("minimum_slop", 100)))
    if protocol == "fractional":
        return FractionalScoring(fraction=float(description.get("fraction", 0.05)))
    raise ValueError(f"unknown scoring protocol {protocol!r}")


@dataclass(frozen=True)
class CellResult:
    """One evaluated grid cell.

    ``region_start``/``region_end`` describe the labeled region nearest
    to the prediction (the region, under UCR's single-anomaly rule), or
    ``None`` for an unlabeled series.  ``cached`` is runtime-only — it
    never enters manifests or artifacts, which must not depend on cache
    temperature.
    """

    detector: str
    series: str
    location: int
    correct: bool
    region_start: int | None
    region_end: int | None
    cached: bool = False

    def to_json(self) -> dict:
        region = None
        if self.region_start is not None:
            region = [self.region_start, self.region_end]
        return {
            "detector": self.detector,
            "series": self.series,
            "location": self.location,
            "correct": self.correct,
            "region": region,
        }


@dataclass
class RunStats:
    """How a run was satisfied: total cells, detector calls, cache hits."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0

    def format(self) -> str:
        return (
            f"{self.cells} cells: {self.executed} executed, "
            f"{self.cache_hits} from cache"
        )


@dataclass
class RunReport:
    """Everything one engine run produced, still in memory."""

    archive_name: str
    archive_size: int
    archive_fingerprint: str
    specs: list[DetectorSpec]
    scoring: dict
    cells: list[CellResult]
    config: dict = field(default_factory=dict)
    stats: RunStats = field(default_factory=RunStats)

    def cells_for(self, spec: DetectorSpec | str) -> list[CellResult]:
        label = spec.label if isinstance(spec, DetectorSpec) else spec
        return [cell for cell in self.cells if cell.detector == label]

    def summary(self, spec: DetectorSpec | str) -> UcrSummary:
        """One spec's cells in the existing :class:`UcrSummary` shape."""
        outcomes = [
            UcrOutcome(
                name=cell.series,
                location=cell.location,
                correct=cell.correct,
                region_start=-1 if cell.region_start is None else cell.region_start,
                region_end=-1 if cell.region_end is None else cell.region_end,
            )
            for cell in self.cells_for(spec)
        ]
        return UcrSummary(outcomes=outcomes)

    def summaries(self) -> dict[str, UcrSummary]:
        """Label → summary for every spec, in line-up order."""
        return {spec.label: self.summary(spec) for spec in self.specs}

    def accuracies(self) -> dict[str, float]:
        """Label → archive accuracy for every spec, in line-up order."""
        return {
            label: summary.accuracy
            for label, summary in self.summaries().items()
        }

    def outcome_matrix(self):
        """The detectors × series correctness matrix for the stats engine.

        Returns a :class:`repro.stats.OutcomeMatrix` (imported lazily —
        the runner never needs the stats machinery to execute a grid).
        """
        from ..stats import OutcomeMatrix

        return OutcomeMatrix.from_cells(self.cells)

    def manifest(self) -> RunManifest:
        """The run's reproducibility record (cache/parallelism free)."""
        return RunManifest(
            archive={
                "name": self.archive_name,
                "num_series": self.archive_size,
                "fingerprint": self.archive_fingerprint,
            },
            scoring=dict(self.scoring),
            specs=[spec.to_json() for spec in self.specs],
            cells=[cell.to_json() for cell in self.cells],
            config=dict(self.config),
        )


def _pool_worker_init() -> None:
    """Cap kernel parallelism inside engine pool workers.

    ``--kernel-jobs`` travels to workers via ``REPRO_KERNEL_JOBS``
    (like the memory budget), but an engine already running ``--jobs``
    cells in parallel must not let each cell open its own kernel pool —
    that would oversubscribe the machine ``jobs × kernel_jobs`` ways.
    Workers therefore cap an inherited kernel-jobs default to 1: the
    sweep keeps its (jobs-independent) shard plan in-process, so
    results and canonical traces stay identical to a ``--jobs 1`` run
    where the kernel pool is allowed.  With no kernel-jobs default set
    this is a no-op and cells keep the historical unsharded sweep.
    """
    from ..detectors import default_kernel_jobs, set_default_kernel_jobs

    if default_kernel_jobs() is not None:
        set_default_kernel_jobs(1)


def _locate_cell(task: tuple[DetectorSpec, LabeledSeries]) -> int:
    """Worker entry point: build the detector and run the UCR protocol."""
    spec, series = task
    return int(spec.build().locate(series))


def _locate_cell_traced(
    task: tuple[DetectorSpec, LabeledSeries],
) -> tuple[int, list, list]:
    """Traced worker entry point: spans and metrics travel by value.

    A ProcessPool worker cannot share the parent's tracer, so it opens
    its own tracing session (fresh tracer *and* registry — also what
    shields the parent registry when this runs in-process for serial
    jobs), locates the cell, and returns the exported span records plus
    the registry state alongside the result.  The parent adopts both in
    task order, which is what makes serial and parallel traces
    identical after timing fields are stripped.
    """
    spec, series = task
    with tracing_session(enabled=True) as (tracer, registry):
        with tracer.span("engine.locate"):
            location = int(spec.build().locate(series))
        return location, tracer.export(), registry.export_state()


class EvalEngine:
    """Single execution path for detector × archive evaluation.

    Parameters
    ----------
    specs:
        Detector line-up — :class:`DetectorSpec` instances or parseable
        strings (``"matrix_profile(w=100)"``).
    scoring:
        Correctness protocol; defaults to :class:`UcrScoring`.
    cache:
        A :class:`ResultCache`, a directory path to open one in, or
        None to recompute every cell.
    jobs:
        Worker processes for uncached cells; 1 means in-process serial.
    config:
        Free-form run parameters (seeds, CLI arguments…) recorded
        verbatim in the manifest.
    """

    def __init__(
        self,
        specs,
        *,
        scoring=None,
        cache: ResultCache | str | None = None,
        jobs: int = 1,
        config: dict | None = None,
    ) -> None:
        parsed = [
            spec if isinstance(spec, DetectorSpec) else DetectorSpec.parse(spec)
            for spec in specs
        ]
        # dedupe preserving order: a repeated spec is the same
        # computation, and keeping it would double-count its summary
        self.specs = list(dict.fromkeys(parsed))
        if not self.specs:
            raise ValueError("EvalEngine needs at least one detector spec")
        self.scoring = scoring if scoring is not None else UcrScoring()
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.config = dict(config or {})

    def run(self, archive: Archive) -> RunReport:
        """Evaluate every spec on every series and aggregate."""
        tracer = get_tracer()
        with tracer.span(
            "engine.run",
            archive=archive.name,
            specs=len(self.specs),
            jobs=self.jobs,
        ):
            return self._run(archive, tracer)

    def _run(self, archive: Archive, tracer) -> RunReport:
        for spec in self.specs:
            spec.build()  # fail fast on unknown names or bad params
        scoring_desc = self.scoring.describe()
        tasks = [
            (spec, series) for spec in self.specs for series in archive.series
        ]

        locations: list[int | None] = [None] * len(tasks)
        keys: list[str | None] = [None] * len(tasks)
        pending: list[int] = []
        for index, (spec, series) in enumerate(tasks):
            if self.cache is not None:
                keys[index] = cache_key(spec, series, scoring_desc)
                payload = self.cache.get(keys[index])
                try:
                    locations[index] = int(payload["location"])
                    continue
                except (KeyError, TypeError, ValueError):
                    locations[index] = None  # malformed entry: miss
            pending.append(index)

        registry = get_registry()
        registry.counter("engine_cells").inc(len(tasks))
        registry.counter("engine_cache_hits").inc(len(tasks) - len(pending))
        registry.counter("engine_cache_misses").inc(len(pending))

        # with tracing on, workers return (location, spans, metrics) and
        # the adoption below splices them under per-cell spans; the
        # traced path is also taken for jobs=1 so serial and parallel
        # runs export the same tree
        traced = tracer.enabled
        worker = _locate_cell_traced if traced else _locate_cell
        exports: dict[int, tuple[list, list]] = {}
        if pending:
            batch = [tasks[index] for index in pending]
            if self.jobs > 1 and len(batch) > 1:
                chunksize = max(1, len(batch) // (self.jobs * 4))
                with ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=_pool_worker_init
                ) as pool:
                    found = list(
                        pool.map(worker, batch, chunksize=chunksize)
                    )
            else:
                found = [worker(task) for task in batch]
            if traced:
                unpacked = []
                for offset, (location, records, state) in enumerate(found):
                    exports[pending[offset]] = (records, state)
                    unpacked.append(location)
                found = unpacked
            for index, location in zip(pending, found):
                locations[index] = location
                if self.cache is not None:
                    self.cache.put(keys[index], {"location": location})

        executed = set(pending)
        cells = []
        for index, ((spec, series), location) in enumerate(
            zip(tasks, locations)
        ):
            cached = index not in executed
            cell_span = (
                tracer.span(
                    "engine.cell",
                    detector=spec.label,
                    series=series.name,
                    cached=cached,
                )
                if traced
                else nullcontext()
            )
            with cell_span:
                if index in exports:
                    records, state = exports[index]
                    tracer.adopt(records)
                    registry.merge_state(state)
                nearest = series.labels.nearest_region(location)
                cells.append(
                    CellResult(
                        detector=spec.label,
                        series=series.name,
                        location=location,
                        correct=self.scoring.correct(series, location),
                        region_start=None if nearest is None else nearest.start,
                        region_end=None if nearest is None else nearest.end,
                        cached=cached,
                    )
                )

        return RunReport(
            archive_name=archive.name,
            archive_size=len(archive),
            archive_fingerprint=archive_fingerprint(archive),
            specs=list(self.specs),
            scoring=scoring_desc,
            cells=cells,
            config=dict(self.config),
            stats=RunStats(
                cells=len(tasks),
                executed=len(pending),
                cache_hits=len(tasks) - len(pending),
            ),
        )
