"""Parallel evaluation engine with caching and reproducible manifests.

The single execution path for detector × archive grids:

* :mod:`repro.runner.engine` — grid expansion, serial or process-pool
  execution with deterministic (byte-identical) output ordering.
* :mod:`repro.runner.cache` — disk-backed, content-addressed result
  cache so warm re-runs execute zero detector calls.
* :mod:`repro.runner.manifest` — canonical run manifests with a ``diff``
  helper to explain how two runs differ.
* :mod:`repro.runner.results` — aggregation into the existing
  :class:`~repro.scoring.UcrSummary` shape and JSONL/text artifacts.
"""

from .cache import CacheStats, ResultCache, cache_key
from .engine import (
    CellResult,
    EvalEngine,
    FractionalScoring,
    RunReport,
    RunStats,
    UcrScoring,
    scoring_from_description,
)
from .manifest import (
    MANIFEST_VERSION,
    ManifestDiff,
    RunManifest,
    archive_fingerprint,
)
from .results import (
    DEFAULT_OUT_DIR,
    ResultsStore,
    artifact_paths,
    format_report,
    load_report,
)

__all__ = [
    "cache_key",
    "CacheStats",
    "ResultCache",
    "UcrScoring",
    "FractionalScoring",
    "scoring_from_description",
    "CellResult",
    "RunStats",
    "RunReport",
    "EvalEngine",
    "MANIFEST_VERSION",
    "archive_fingerprint",
    "RunManifest",
    "ManifestDiff",
    "DEFAULT_OUT_DIR",
    "artifact_paths",
    "format_report",
    "load_report",
    "ResultsStore",
]
