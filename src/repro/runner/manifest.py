"""Reproducible run manifests.

A manifest is the durable record of one evaluation run: which archive
(by content fingerprint), which detector specs, which scoring protocol
and seeds, and every per-cell outcome.  Serialization is canonical —
sorted keys, fixed separators, no timestamps or host details — so two
runs that computed the same thing produce *byte-identical* manifests
regardless of parallelism or cache state, and ``diff`` can explain
exactly what changed when they did not.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..types import Archive

__all__ = [
    "MANIFEST_VERSION",
    "archive_fingerprint",
    "RunManifest",
    "ManifestDiff",
]

MANIFEST_VERSION = 1


def archive_fingerprint(archive: Archive) -> str:
    """SHA-256 over every series' name, values, labels and train split.

    Any relabeling, renaming, reordering or single-sample edit changes
    the fingerprint, so a manifest pins down exactly which data it was
    computed on.
    """
    digest = hashlib.sha256()
    for series in archive.series:
        header = {
            "name": series.name,
            "train_len": int(series.train_len),
            "regions": [[r.start, r.end] for r in series.labels.regions],
        }
        digest.update(json.dumps(header, sort_keys=True).encode())
        digest.update(b"\x00")
        digest.update(
            np.ascontiguousarray(series.values, dtype=np.float64).tobytes()
        )
    return digest.hexdigest()


def _cell_key(cell: dict) -> tuple[str, str]:
    return (cell["detector"], cell["series"])


@dataclass
class RunManifest:
    """The reproducibility record of one engine run.

    ``cells`` holds one dict per evaluation —
    ``{"detector", "series", "location", "correct", "region"}`` — in
    deterministic grid order (specs in line-up order, series in archive
    order).  ``config`` carries caller-provided run parameters such as
    seeds; it is recorded verbatim and compared by ``diff``.
    """

    archive: dict
    scoring: dict
    specs: list[dict]
    cells: list[dict]
    config: dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    # -- serialization ----------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON text (stable across runs and platforms)."""
        payload = {
            "version": self.version,
            "archive": self.archive,
            "scoring": self.scoring,
            "config": self.config,
            "specs": self.specs,
            "cells": self.cells,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        return cls(
            archive=payload["archive"],
            scoring=payload["scoring"],
            specs=payload["specs"],
            cells=payload["cells"],
            config=payload.get("config", {}),
            version=payload.get("version", MANIFEST_VERSION),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_json(Path(path).read_text())

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON text."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- comparison --------------------------------------------------

    def diff(self, other: "RunManifest") -> "ManifestDiff":
        """Structured comparison against another manifest."""
        mine = {_cell_key(cell): cell for cell in self.cells}
        theirs = {_cell_key(cell): cell for cell in other.cells}
        added = sorted(key for key in theirs if key not in mine)
        removed = sorted(key for key in mine if key not in theirs)
        changed = []
        for key in sorted(set(mine) & set(theirs)):
            if mine[key] != theirs[key]:
                changed.append((key, mine[key], theirs[key]))
        context = {}
        for label in ("archive", "scoring", "config"):
            before, after = getattr(self, label), getattr(other, label)
            if before != after:
                context[label] = (before, after)
        return ManifestDiff(
            added=added, removed=removed, changed=changed, context=context
        )


@dataclass
class ManifestDiff:
    """What separates two manifests: cell churn plus context changes."""

    added: list[tuple[str, str]]
    removed: list[tuple[str, str]]
    changed: list[tuple[tuple[str, str], dict, dict]]
    context: dict

    @property
    def identical(self) -> bool:
        return not (self.added or self.removed or self.changed or self.context)

    def format(self) -> str:
        if self.identical:
            return "manifests are identical"
        lines = []
        for label, (before, after) in sorted(self.context.items()):
            lines.append(f"{label} changed:")
            lines.append(f"  - {json.dumps(before, sort_keys=True)}")
            lines.append(f"  + {json.dumps(after, sort_keys=True)}")
        for detector, series in self.removed:
            lines.append(f"- cell {detector} x {series}")
        for detector, series in self.added:
            lines.append(f"+ cell {detector} x {series}")
        for (detector, series), before, after in self.changed:
            lines.append(
                f"~ cell {detector} x {series}: "
                f"location {before['location']} -> {after['location']}, "
                f"correct {before['correct']} -> {after['correct']}"
            )
        return "\n".join(lines)
