"""Results store: turn engine runs into durable, diffable artifacts.

Bridges the engine to the repo's existing reporting shapes: per-spec
cells aggregate into :class:`~repro.scoring.UcrSummary` (via
``RunReport.summaries``) and the store writes the flaw-report-style
text tables plus machine-readable JSONL and a manifest under
``benchmarks/out/`` (or any directory).  All artifacts are emitted in
deterministic order with canonical JSON, so re-running a grid — warm or
cold cache, serial or parallel — rewrites byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import RunReport

__all__ = ["format_report", "ResultsStore", "DEFAULT_OUT_DIR"]

DEFAULT_OUT_DIR = Path("benchmarks") / "out"


def format_report(report: RunReport, per_cell: bool = False) -> str:
    """Ranked accuracy table; with ``per_cell`` also every outcome."""
    lines = [
        f"archive {report.archive_name}: {report.archive_size} series, "
        f"{len(report.specs)} detectors "
        f"[{report.scoring.get('protocol', '?')} scoring]"
    ]
    summaries = report.summaries()
    ranked = sorted(
        summaries.items(), key=lambda kv: (-kv[1].accuracy, kv[0])
    )
    for label, summary in ranked:
        lines.append(
            f"  {label:<36} accuracy {summary.accuracy:6.1%} "
            f"({summary.num_correct}/{len(summary.outcomes)})"
        )
    if per_cell:
        for label, summary in summaries.items():
            lines += ["", f"== {label} ==", summary.format()]
    return "\n".join(lines)


class ResultsStore:
    """Writes one run's artifacts under a single directory.

    ``write`` produces three files per basename:

    * ``<name>.cells.jsonl`` — one canonical JSON object per cell;
    * ``<name>.summary.txt`` — the ranked accuracy table;
    * ``<name>.manifest.json`` — the full run manifest.
    """

    def __init__(self, out_dir: str | Path = DEFAULT_OUT_DIR) -> None:
        self.out_dir = Path(out_dir)

    def write(self, report: RunReport, basename: str) -> dict[str, Path]:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "cells": self.out_dir / f"{basename}.cells.jsonl",
            "summary": self.out_dir / f"{basename}.summary.txt",
            "manifest": self.out_dir / f"{basename}.manifest.json",
        }
        cell_lines = [
            json.dumps(cell.to_json(), sort_keys=True) for cell in report.cells
        ]
        paths["cells"].write_text("\n".join(cell_lines) + "\n")
        paths["summary"].write_text(format_report(report) + "\n")
        report.manifest().save(paths["manifest"])
        return paths
