"""Results store: turn engine runs into durable, diffable artifacts.

Bridges the engine to the repo's existing reporting shapes: per-spec
cells aggregate into :class:`~repro.scoring.UcrSummary` (via
``RunReport.summaries``) and the store writes the flaw-report-style
text tables plus machine-readable JSONL and a manifest under
``benchmarks/out/`` (or any directory).  All artifacts are emitted in
deterministic order with canonical JSON, so re-running a grid — warm or
cold cache, serial or parallel — rewrites byte-identical files.

The store also works in reverse: :func:`load_report` round-trips saved
``cells.jsonl`` + manifest artifacts back into a
:class:`~repro.runner.RunReport`-shaped object, so downstream analyses
(``repro compare``, the stats subsystem) run on cold artifacts with no
recompute.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..detectors import DetectorSpec
from .engine import CellResult, RunReport, RunStats
from .manifest import RunManifest

__all__ = [
    "format_report",
    "artifact_paths",
    "load_report",
    "ResultsStore",
    "DEFAULT_OUT_DIR",
]

DEFAULT_OUT_DIR = Path("benchmarks") / "out"


def format_report(report: RunReport, per_cell: bool = False) -> str:
    """Ranked accuracy table; with ``per_cell`` also every outcome."""
    lines = [
        f"archive {report.archive_name}: {report.archive_size} series, "
        f"{len(report.specs)} detectors "
        f"[{report.scoring.get('protocol', '?')} scoring]"
    ]
    summaries = report.summaries()
    ranked = sorted(
        summaries.items(), key=lambda kv: (-kv[1].accuracy, kv[0])
    )
    for label, summary in ranked:
        lines.append(
            f"  {label:<36} accuracy {summary.accuracy:6.1%} "
            f"({summary.num_correct}/{len(summary.outcomes)})"
        )
    if per_cell:
        for label, summary in summaries.items():
            lines += ["", f"== {label} ==", summary.format()]
    return "\n".join(lines)


def artifact_paths(out_dir: str | Path, basename: str) -> dict[str, Path]:
    """The store's file layout for one basename."""
    out_dir = Path(out_dir)
    return {
        "cells": out_dir / f"{basename}.cells.jsonl",
        "summary": out_dir / f"{basename}.summary.txt",
        "manifest": out_dir / f"{basename}.manifest.json",
        "stats": out_dir / f"{basename}.stats.json",
        "traces": out_dir / f"{basename}.traces.jsonl",
    }


def _cell_from_json(payload: dict) -> CellResult:
    region = payload.get("region")
    return CellResult(
        detector=str(payload["detector"]),
        series=str(payload["series"]),
        location=int(payload["location"]),
        correct=bool(payload["correct"]),
        region_start=None if region is None else int(region[0]),
        region_end=None if region is None else int(region[1]),
        cached=True,  # a loaded cell was, by definition, not executed now
    )


def load_report(out_dir: str | Path, basename: str = "run") -> RunReport:
    """Rebuild a :class:`RunReport` from saved artifacts.

    The manifest is the source of truth for archive identity, scoring,
    specs and config; per-cell outcomes come from ``cells.jsonl`` when
    present (falling back to the manifest's own cell list), and the two
    are cross-checked so a stale or hand-edited JSONL cannot silently
    disagree with the manifest it sits next to.  ``stats`` on the
    rebuilt report reflects artifact provenance, not execution: every
    cell counts as a cache hit.
    """
    paths = artifact_paths(out_dir, basename)
    if not paths["manifest"].is_file():
        raise FileNotFoundError(
            f"no run manifest at {paths['manifest']}; expected artifacts "
            f"written by `repro run --name {basename}`"
        )
    manifest = RunManifest.load(paths["manifest"])
    cell_dicts = manifest.cells
    if paths["cells"].is_file():
        jsonl = [
            json.loads(line)
            for line in paths["cells"].read_text().splitlines()
            if line.strip()
        ]
        if jsonl != cell_dicts:
            raise ValueError(
                f"{paths['cells']} disagrees with {paths['manifest']}; "
                f"the artifacts were not written by the same run"
            )
        cell_dicts = jsonl
    cells = [_cell_from_json(payload) for payload in cell_dicts]
    return RunReport(
        archive_name=str(manifest.archive.get("name", "?")),
        archive_size=int(manifest.archive.get("num_series", 0)),
        archive_fingerprint=str(manifest.archive.get("fingerprint", "")),
        specs=[DetectorSpec.from_json(spec) for spec in manifest.specs],
        scoring=dict(manifest.scoring),
        cells=cells,
        config=dict(manifest.config),
        stats=RunStats(cells=len(cells), executed=0, cache_hits=len(cells)),
    )


class ResultsStore:
    """Writes one run's artifacts under a single directory.

    ``write`` produces three files per basename:

    * ``<name>.cells.jsonl`` — one canonical JSON object per cell;
    * ``<name>.summary.txt`` — the ranked accuracy table **plus every
      per-cell outcome** (the durable record must not hide the data the
      stats engine runs on);
    * ``<name>.manifest.json`` — the full run manifest.

    ``write_stats`` adds a fourth, ``<name>.stats.json`` — a canonical
    leaderboard produced by :mod:`repro.stats`.  ``load`` round-trips
    the artifacts back into a report.
    """

    def __init__(self, out_dir: str | Path = DEFAULT_OUT_DIR) -> None:
        self.out_dir = Path(out_dir)

    def write(self, report: RunReport, basename: str) -> dict[str, Path]:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        paths = artifact_paths(self.out_dir, basename)
        del paths["stats"]  # written separately, only on request
        del paths["traces"]  # streaming replays only, via write_traces
        cell_lines = [
            json.dumps(cell.to_json(), sort_keys=True) for cell in report.cells
        ]
        paths["cells"].write_text("\n".join(cell_lines) + "\n")
        paths["summary"].write_text(format_report(report, per_cell=True) + "\n")
        report.manifest().save(paths["manifest"])
        return paths

    def write_stats(self, leaderboard, basename: str) -> Path:
        """Persist a :class:`repro.stats.Leaderboard` as canonical JSON."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = artifact_paths(self.out_dir, basename)["stats"]
        path.write_text(leaderboard.to_json())
        return path

    def write_traces(self, traces, basename: str) -> Path:
        """Persist streaming :class:`~repro.stream.ReplayTrace` records.

        One canonical JSON object per line (sorted keys, wall-clock
        timing excluded, scores as a fingerprint), so a re-run of the
        same replay writes a byte-identical ``<name>.traces.jsonl``.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = artifact_paths(self.out_dir, basename)["traces"]
        path.write_text(
            "\n".join(trace.to_jsonl() for trace in traces) + "\n"
        )
        return path

    def load_traces(self, basename: str = "run") -> list[dict]:
        """Saved trace records as dicts, in replay grid order."""
        path = artifact_paths(self.out_dir, basename)["traces"]
        if not path.is_file():
            raise FileNotFoundError(
                f"no streaming traces at {path}; expected artifacts "
                f"written by `repro stream --out ... --name {basename}`"
            )
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    def load(self, basename: str = "run") -> RunReport:
        """Round-trip saved artifacts back into a report."""
        return load_report(self.out_dir, basename)
