"""Deterministic random-stream helpers.

Every simulator in :mod:`repro.datasets` derives its randomness from a
single integer seed through these helpers, so archives are reproducible
bit-for-bit and sub-streams are independent of generation order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_for", "child_seed"]

_MIX = 0x9E3779B97F4A7C15  # golden-ratio increment used by splitmix64


def child_seed(seed: int, *path: int | str) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a label path.

    The path mixes in both strings (module / series names) and integers
    (series index), so ``child_seed(7, "yahoo", "A1", 3)`` never collides
    with ``child_seed(7, "yahoo", "A2", 3)``.
    """
    state = (seed * 2 + 1) & 0xFFFFFFFFFFFFFFFF
    for part in path:
        if isinstance(part, str):
            for byte in part.encode("utf-8"):
                state = _splitmix64(state ^ byte)
        else:
            state = _splitmix64(state ^ (int(part) & 0xFFFFFFFFFFFFFFFF))
    return state >> 1  # keep it non-negative for np.random.default_rng


def _splitmix64(state: int) -> int:
    state = (state + _MIX) & 0xFFFFFFFFFFFFFFFF
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def rng_for(seed: int, *path: int | str) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the given seed and path."""
    return np.random.default_rng(child_seed(seed, *path))
