"""Invariance transforms (paper §4.2).

The paper argues algorithms should be explained "with reference to their
invariances ... amplitude scaling, offset, occlusion, noise, linear
trend, warping, uniform scaling".  Each transform here perturbs a
labeled series along exactly one of those axes, preserving (or exactly
remapping) its labels, so the invariance harness can ask: *does the
detector still find the anomaly?*
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..types import AnomalyRegion, LabeledSeries, Labels

__all__ = [
    "Transform",
    "Identity",
    "AddNoise",
    "AmplitudeScale",
    "Offset",
    "LinearTrend",
    "BaselineWander",
    "Occlusion",
    "UniformScale",
    "STANDARD_TRANSFORMS",
]


class Transform(ABC):
    """A labeled-series perturbation along one invariance axis."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        """Return the transformed series (labels preserved or remapped)."""

    def __repr__(self) -> str:
        return f"<{self.name}>"


@dataclass(repr=False)
class Identity(Transform):
    """No-op: the clean-signal control row of Fig 13 (top)."""

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        return series.with_values(series.values.copy(), "+identity")


@dataclass(repr=False)
class AddNoise(Transform):
    """Additive Gaussian noise, σ = ``fraction`` of the series std
    (Fig 13 bottom: 'the same electrocardiogram with noise added')."""

    fraction: float = 1.0

    @property
    def name(self) -> str:
        return f"AddNoise({self.fraction:g}σ)"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        sigma = self.fraction * float(series.values.std())
        noisy = series.values + rng.normal(0.0, sigma, series.n)
        return series.with_values(noisy, f"+noise{self.fraction:g}")


@dataclass(repr=False)
class AmplitudeScale(Transform):
    """Multiply the whole series by a constant."""

    factor: float = 5.0

    @property
    def name(self) -> str:
        return f"AmplitudeScale(x{self.factor:g})"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        return series.with_values(series.values * self.factor, "+scale")


@dataclass(repr=False)
class Offset(Transform):
    """Add a constant level shift."""

    fraction: float = 10.0  # of the series std

    @property
    def name(self) -> str:
        return f"Offset({self.fraction:g}σ)"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        delta = self.fraction * float(series.values.std())
        return series.with_values(series.values + delta, "+offset")


@dataclass(repr=False)
class LinearTrend(Transform):
    """Superimpose a ramp spanning ``fraction``·std over the series."""

    fraction: float = 3.0

    @property
    def name(self) -> str:
        return f"LinearTrend({self.fraction:g}σ)"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        span = self.fraction * float(series.values.std())
        ramp = np.linspace(0.0, span, series.n)
        return series.with_values(series.values + ramp, "+trend")


@dataclass(repr=False)
class BaselineWander(Transform):
    """Slow sinusoidal baseline drift "not relevant to the
    normal/anomaly distinction" (the paper's §4.2 example question)."""

    fraction: float = 2.0
    period_fraction: float = 0.25  # of the series length

    @property
    def name(self) -> str:
        return f"BaselineWander({self.fraction:g}σ)"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        amplitude = self.fraction * float(series.values.std())
        period = max(2.0, self.period_fraction * series.n)
        t = np.arange(series.n)
        phase = rng.uniform(0, 2 * np.pi)
        wander = amplitude * np.sin(2 * np.pi * t / period + phase)
        return series.with_values(series.values + wander, "+wander")


@dataclass(repr=False)
class Occlusion(Transform):
    """Zero out short segments away from the labeled anomaly."""

    num_segments: int = 3
    segment_length: int = 20

    @property
    def name(self) -> str:
        return f"Occlusion({self.num_segments}x{self.segment_length})"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        values = series.values.copy()
        forbidden = series.labels.to_mask()
        placed = 0
        attempts = 0
        while placed < self.num_segments and attempts < 100:
            attempts += 1
            start = int(rng.integers(series.train_len, series.n - self.segment_length))
            window = slice(start, start + self.segment_length)
            if forbidden[window].any():
                continue
            values[window] = values[start]
            placed += 1
        return series.with_values(values, "+occlusion")


@dataclass(repr=False)
class UniformScale(Transform):
    """Uniformly stretch time by ``factor`` (resampling), remapping the
    labels and train split to the new coordinates."""

    factor: float = 1.25

    @property
    def name(self) -> str:
        return f"UniformScale(x{self.factor:g})"

    def apply(self, series: LabeledSeries, rng: np.random.Generator) -> LabeledSeries:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        new_n = int(round(series.n * self.factor))
        old_axis = np.linspace(0.0, 1.0, series.n)
        new_axis = np.linspace(0.0, 1.0, new_n)
        values = np.interp(new_axis, old_axis, series.values)
        regions = tuple(
            AnomalyRegion(
                int(region.start * self.factor),
                max(int(region.end * self.factor), int(region.start * self.factor) + 1),
            )
            for region in series.labels.regions
        )
        return LabeledSeries(
            name=series.name + "+uniformscale",
            values=values,
            labels=Labels(n=new_n, regions=regions),
            train_len=int(series.train_len * self.factor),
            meta=dict(series.meta),
        )


#: The default transform panel used by the Fig 13 bench.
STANDARD_TRANSFORMS: tuple[Transform, ...] = (
    Identity(),
    AddNoise(1.0),
    AmplitudeScale(5.0),
    Offset(10.0),
    LinearTrend(3.0),
    BaselineWander(2.0),
    Occlusion(),
)
