"""The Fig-13 invariance harness.

For each (detector, transform) pair: does the detector's score still
peak at the anomaly, and with how much *discrimination* — the paper's
informal "difference between the highest value and the mean values"?
The output is the machine-readable version of Fig 13's visual argument,
generalized from one transform (noise) to the §4.2 invariance panel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..detectors.base import Detector
from ..rng import rng_for
from ..types import LabeledSeries
from .transforms import STANDARD_TRANSFORMS, Transform

__all__ = ["InvarianceOutcome", "InvarianceStudy", "discrimination", "run_invariance"]


def discrimination(scores: np.ndarray, start: int = 0) -> float:
    """(peak − mean) / std of the scores from ``start`` on.

    The paper reads this quantity directly off Fig 13's panels;
    normalizing by the std makes it comparable across detectors whose
    score units differ.
    """
    region = np.asarray(scores, dtype=float)[start:]
    region = region[np.isfinite(region)]
    if region.size < 2:
        return 0.0
    std = float(region.std())
    if std == 0.0:
        return 0.0
    return float((region.max() - region.mean()) / std)


@dataclass(frozen=True)
class InvarianceOutcome:
    """One (detector, transform) cell of the invariance matrix."""

    detector: str
    transform: str
    location: int
    correct: bool
    discrimination: float


@dataclass
class InvarianceStudy:
    """All cells plus formatting helpers."""

    series_name: str
    outcomes: list[InvarianceOutcome]

    def cell(self, detector: str, transform: str) -> InvarianceOutcome:
        for outcome in self.outcomes:
            if outcome.detector == detector and outcome.transform == transform:
                return outcome
        raise KeyError(f"no outcome for ({detector!r}, {transform!r})")

    def invariant_transforms(self, detector: str) -> list[str]:
        """Transforms under which the detector still localizes correctly."""
        return [
            outcome.transform
            for outcome in self.outcomes
            if outcome.detector == detector and outcome.correct
        ]

    def format(self) -> str:
        detectors = sorted({o.detector for o in self.outcomes})
        transforms = []
        for outcome in self.outcomes:
            if outcome.transform not in transforms:
                transforms.append(outcome.transform)
        width = max(len(t) for t in transforms) + 2
        header = " " * width + "".join(f"{d:>24}" for d in detectors)
        lines = [f"invariance study: {self.series_name}", header]
        for transform in transforms:
            row = f"{transform:<{width}}"
            for detector in detectors:
                outcome = self.cell(detector, transform)
                mark = "ok " if outcome.correct else "MISS"
                row += f"{mark:>12}{outcome.discrimination:>10.2f}"
            lines.append(row)
        lines.append("(per detector: localization verdict, discrimination)")
        return "\n".join(lines)


def _locate_and_discriminate(
    detector: Detector, series: LabeledSeries, slop: int
) -> tuple[int, bool, float]:
    detector.fit(series.train)
    scores = np.asarray(detector.score(series.values), dtype=float)
    scores = np.where(np.isfinite(scores), scores, -np.inf)
    scores[: series.train_len] = -np.inf
    location = int(np.argmax(scores))
    region = series.labels.nearest_region(location)
    correct = region is not None and region.contains(location, slop=slop)
    return location, correct, discrimination(scores, series.train_len)


def run_invariance(
    series: LabeledSeries,
    detectors: list[Detector],
    transforms: tuple[Transform, ...] = STANDARD_TRANSFORMS,
    seed: int = 0,
    slop: int | None = None,
) -> InvarianceStudy:
    """Evaluate every detector under every transform of one series.

    ``slop`` is the accepted answer range around the labeled region
    (§4.4's "slop"); default is the UCR rule of max(100, region length).
    """
    if series.labels.num_regions == 0:
        raise ValueError(f"{series.name} has no labeled anomaly")
    region = series.labels.regions[0]
    if slop is None:
        slop = max(100, region.length)
    outcomes = []
    for t_index, transform in enumerate(transforms):
        rng = rng_for(seed, "invariance", series.name, t_index)
        transformed = transform.apply(series, rng)
        for detector in detectors:
            location, correct, disc = _locate_and_discriminate(
                detector, transformed, slop
            )
            outcomes.append(
                InvarianceOutcome(
                    detector=detector.name,
                    transform=transform.name,
                    location=location,
                    correct=correct,
                    discrimination=disc,
                )
            )
    return InvarianceStudy(series_name=series.name, outcomes=outcomes)
