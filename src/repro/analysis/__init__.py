"""Invariance analysis (paper §4.2 and Fig 13)."""

from .invariance import (
    InvarianceOutcome,
    InvarianceStudy,
    discrimination,
    run_invariance,
)
from .transforms import (
    STANDARD_TRANSFORMS,
    AddNoise,
    AmplitudeScale,
    BaselineWander,
    Identity,
    LinearTrend,
    Occlusion,
    Offset,
    Transform,
    UniformScale,
)

__all__ = [
    "Transform",
    "Identity",
    "AddNoise",
    "AmplitudeScale",
    "Offset",
    "LinearTrend",
    "BaselineWander",
    "Occlusion",
    "UniformScale",
    "STANDARD_TRANSFORMS",
    "discrimination",
    "InvarianceOutcome",
    "InvarianceStudy",
    "run_invariance",
]
