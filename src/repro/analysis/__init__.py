"""Invariance analysis (paper §4.2 and Fig 13).

The paper argues a benchmark should reward detectors that are invariant
to nuisance transforms of the signal: Fig 13 pits Telemanom against the
time-series discord on a one-minute ECG, clean and with heavy added
noise, and only the discord keeps peaking at the PVC.  This package
generalizes that protocol to a detector × transform grid:

* :mod:`~repro.analysis.transforms` — the transform zoo
  (:data:`STANDARD_TRANSFORMS`: identity, added noise, amplitude/
  uniform scaling, offset, linear trend, baseline wander, occlusion),
  each a small value object applied to a labeled series.
* :mod:`~repro.analysis.invariance` — :func:`run_invariance` evaluates
  a detector across the transform grid and
  :func:`discrimination` summarizes how far the anomaly score stands
  out from the background under each transform.

``benchmarks/test_fig13_invariance.py`` regenerates the Fig 13 study on
the simulated ECG and asserts the discord's discrimination survives the
noise while Telemanom's collapses.
"""

from .invariance import (
    InvarianceOutcome,
    InvarianceStudy,
    discrimination,
    run_invariance,
)
from .transforms import (
    STANDARD_TRANSFORMS,
    AddNoise,
    AmplitudeScale,
    BaselineWander,
    Identity,
    LinearTrend,
    Occlusion,
    Offset,
    Transform,
    UniformScale,
)

__all__ = [
    "Transform",
    "Identity",
    "AddNoise",
    "AmplitudeScale",
    "Offset",
    "LinearTrend",
    "BaselineWander",
    "Occlusion",
    "UniformScale",
    "STANDARD_TRANSFORMS",
    "discrimination",
    "InvarianceOutcome",
    "InvarianceStudy",
    "run_invariance",
]
