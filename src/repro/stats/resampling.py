"""Bootstrap confidence intervals over correctness vectors.

Archive accuracy is a mean of Bernoulli outcomes, so its sampling
uncertainty is estimated by resampling series with replacement — the
unit of resampling is the *series*, matching the benchmark's unit of
scoring.  The whole bootstrap is one vectorized numpy gather
(``resamples × n`` index matrix), and every random draw flows through
:func:`repro.rng.rng_for` with a caller-supplied stream path, so a
given (seed, stream, vector) triple always produces the same interval
— the property the byte-identical leaderboard artifacts rest on.

Both percentile and BCa (bias-corrected and accelerated) intervals are
available.  BCa is the default: accuracy vectors are heavily discrete
and often skewed near 0 or 1, exactly where the plain percentile
interval is at its worst.  Degenerate inputs fall back gracefully — a
zero-variance vector yields the width-zero interval at its mean, and a
single-series archive cannot be jackknifed, so it drops to percentile
(also width zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import rng_for
from .special import norm_cdf, norm_ppf

__all__ = ["BootstrapCI", "bootstrap_ci"]

DEFAULT_RESAMPLES = 2000


@dataclass(frozen=True)
class BootstrapCI:
    """A two-sided bootstrap confidence interval for a mean."""

    mean: float
    lo: float
    hi: float
    alpha: float
    resamples: int
    n: int
    method: str

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def separated_above(self, other: "BootstrapCI") -> bool:
        """True if this interval lies entirely above ``other``."""
        return self.lo > other.hi

    def overlaps(self, other: "BootstrapCI") -> bool:
        return not (self.lo > other.hi or self.hi < other.lo)

    def format(self) -> str:
        return f"{self.mean:6.1%} [{self.lo:6.1%}, {self.hi:6.1%}]"

    def to_json(self) -> dict:
        return {
            "mean": self.mean,
            "lo": self.lo,
            "hi": self.hi,
            "alpha": self.alpha,
            "resamples": self.resamples,
            "n": self.n,
            "method": self.method,
        }


def _bca_quantile_levels(
    sample: np.ndarray, means: np.ndarray, alpha: float
) -> tuple[float, float] | None:
    """BCa-adjusted quantile levels, or None when BCa is undefined.

    ``z0`` (bias correction) comes from the bootstrap distribution's
    position relative to the point estimate — ties are split in half,
    which keeps the correction stable on discrete accuracy data.
    ``a`` (acceleration) comes from the jackknife; a flat jackknife
    (zero-variance vector) gets ``a = 0`` and the adjustment reduces to
    the bias-corrected percentile interval.
    """
    n = sample.size
    if n < 2:
        return None
    theta = float(sample.mean())
    resamples = means.size
    below = float(np.count_nonzero(means < theta))
    equal = float(np.count_nonzero(means == theta))
    frac = (below + 0.5 * equal) / resamples
    frac = min(max(frac, 1.0 / (resamples + 1)), resamples / (resamples + 1))
    z0 = norm_ppf(frac)

    jack = (sample.sum() - sample) / (n - 1)
    deltas = jack.mean() - jack
    denom = float(np.sum(deltas**2)) ** 1.5
    accel = float(np.sum(deltas**3)) / (6.0 * denom) if denom > 0.0 else 0.0

    levels = []
    for z in (norm_ppf(alpha / 2.0), norm_ppf(1.0 - alpha / 2.0)):
        scale = 1.0 - accel * (z0 + z)
        if abs(scale) < 1e-12:
            return None
        levels.append(norm_cdf(z0 + (z0 + z) / scale))
    lo, hi = sorted(min(max(level, 0.0), 1.0) for level in levels)
    return lo, hi


def bootstrap_ci(
    correct,
    *,
    resamples: int = DEFAULT_RESAMPLES,
    alpha: float = 0.05,
    seed: int = 7,
    stream: tuple = (),
    method: str = "bca",
) -> BootstrapCI:
    """Bootstrap CI for the mean of a correctness vector.

    Parameters
    ----------
    correct:
        Boolean (or 0/1) vector, one entry per series.
    stream:
        Extra :func:`repro.rng.rng_for` path labels (typically the
        detector label) so each detector draws an independent,
        order-insensitive substream of the same seed.
    method:
        ``"bca"`` (default) or ``"percentile"``.  The method actually
        used is recorded on the result (BCa falls back to percentile
        when it is undefined, e.g. a single-element vector).
    """
    if method not in ("bca", "percentile"):
        raise ValueError(f"unknown bootstrap method {method!r}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    sample = np.asarray(correct, dtype=float).ravel()
    if sample.size == 0:
        raise ValueError("cannot bootstrap an empty correctness vector")

    rng = rng_for(seed, "stats.bootstrap", *stream)
    indices = rng.integers(0, sample.size, size=(resamples, sample.size))
    means = sample[indices].mean(axis=1)

    used = method
    levels = None
    if method == "bca":
        levels = _bca_quantile_levels(sample, means, alpha)
        if levels is None:
            used = "percentile"
    if levels is None:
        levels = (alpha / 2.0, 1.0 - alpha / 2.0)

    lo, hi = (float(np.quantile(means, level)) for level in levels)
    return BootstrapCI(
        mean=float(sample.mean()),
        lo=lo,
        hi=hi,
        alpha=float(alpha),
        resamples=int(resamples),
        n=int(sample.size),
        method=used,
    )
