"""The one-liner noise floor: the bar "real progress" must clear.

The paper's Table 1 shows that single-line expressions solve large
fractions of popular benchmarks, so a detector's headline accuracy
means little until it is compared against what those one-liners reach
under the *same* protocol.  This module turns the
:mod:`repro.oneliner` expression families into location predictors —
the predicted anomaly location is simply the argmax of the family's
per-point score, no threshold needed — scores them with the run's own
scoring protocol, and bootstraps a confidence interval for the best
one of the pool.

A detector counts as real progress only when its CI lies entirely
above the best one-liner's CI; overlapping intervals are "within the
noise floor", and an interval entirely below it is, bluntly, "below".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..oneliner import MovstdOneLiner, OneLiner, make_family
from ..types import Archive, LabeledSeries
from .matrix import OutcomeMatrix
from .resampling import DEFAULT_RESAMPLES, BootstrapCI, bootstrap_ci

__all__ = [
    "VERDICT_CLEARS",
    "VERDICT_WITHIN",
    "VERDICT_BELOW",
    "PoolMember",
    "default_pool",
    "evaluate_pool",
    "NoiseFloor",
    "fit_noise_floor",
]

VERDICT_CLEARS = "clears noise floor"
VERDICT_WITHIN = "within noise floor"
VERDICT_BELOW = "below noise floor"


@dataclass(frozen=True)
class PoolMember:
    """One baseline: a labeled one-liner used as a location predictor."""

    label: str
    oneliner: OneLiner

    def locate(self, series: LabeledSeries) -> int:
        """Most anomalous point in the test region, full-series coords.

        Mirrors ``Detector.locate``: the anomaly-free training prefix
        is masked out of the argmax, so the floor answers under the
        same rules as the detectors it anchors.
        """
        scores = np.asarray(self.oneliner.score(series.values), dtype=float)
        scores = np.where(np.isnan(scores), -np.inf, scores)
        scores[: series.train_len] = -np.inf
        return int(np.argmax(scores))


def default_pool() -> tuple[PoolMember, ...]:
    """The standard baseline pool: paper families (3)-(6) plus movstd.

    Families 4 and 6 appear at a short and a long moving window; the
    offset ``b`` is irrelevant because argmax location is invariant to
    it.  Labels are prefixed ``oneliner-`` so they can never collide
    with registry detector labels.
    """
    members = [
        PoolMember("oneliner-f3", make_family(3)),
        PoolMember("oneliner-f4(k=10)", make_family(4, k=10, c=1.0)),
        PoolMember("oneliner-f4(k=50)", make_family(4, k=50, c=1.0)),
        PoolMember("oneliner-f5", make_family(5)),
        PoolMember("oneliner-f6(k=10)", make_family(6, k=10, c=1.0)),
        PoolMember("oneliner-f6(k=50)", make_family(6, k=50, c=1.0)),
        PoolMember("oneliner-movstd(k=5)", MovstdOneLiner(k=5, b=0.0)),
        PoolMember("oneliner-movstd(k=20)", MovstdOneLiner(k=20, b=0.0)),
    ]
    return tuple(members)


def evaluate_pool(
    archive: Archive,
    scoring,
    pool: tuple[PoolMember, ...] | None = None,
) -> OutcomeMatrix:
    """Correctness matrix of the baseline pool under ``scoring``.

    ``scoring`` is any object with ``correct(series, location) -> bool``
    (the engine's protocol objects qualify), so the floor is judged by
    exactly the same rules as the detectors it anchors.
    """
    members = default_pool() if pool is None else tuple(pool)
    if not members:
        raise ValueError("baseline pool is empty")
    series_names = tuple(series.name for series in archive.series)
    if not series_names:
        raise ValueError("cannot evaluate a pool on an empty archive")
    values = np.array(
        [
            [
                bool(scoring.correct(series, member.locate(series)))
                for series in archive.series
            ]
            for member in members
        ],
        dtype=bool,
    )
    return OutcomeMatrix(
        detectors=tuple(member.label for member in members),
        series=series_names,
        values=values,
    )


@dataclass(frozen=True)
class NoiseFloor:
    """The fitted floor: the pool's outcomes and the best member's CI."""

    matrix: OutcomeMatrix
    cis: dict[str, BootstrapCI]
    best: str

    @property
    def ci(self) -> BootstrapCI:
        """The best pool member's confidence interval — the floor itself."""
        return self.cis[self.best]

    def verdict(self, detector_ci: BootstrapCI) -> str:
        """Classify a detector's CI against the floor."""
        if detector_ci.separated_above(self.ci):
            return VERDICT_CLEARS
        if self.ci.separated_above(detector_ci):
            return VERDICT_BELOW
        return VERDICT_WITHIN

    def format(self) -> str:
        lines = [f"noise floor (best one-liner: {self.best} {self.ci.format()})"]
        ranked = sorted(
            self.matrix.detectors,
            key=lambda label: (-self.cis[label].mean, label),
        )
        for label in ranked:
            lines.append(f"  {label:<24} {self.cis[label].format()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "best": self.best,
            "ci": self.ci.to_json(),
            "pool": {
                label: self.cis[label].to_json()
                for label in self.matrix.detectors
            },
        }


def fit_noise_floor(
    archive: Archive,
    scoring,
    *,
    pool: tuple[PoolMember, ...] | None = None,
    resamples: int = DEFAULT_RESAMPLES,
    alpha: float = 0.05,
    seed: int = 7,
    method: str = "bca",
) -> NoiseFloor:
    """Evaluate the pool and bootstrap every member's CI.

    The "best" member maximizes accuracy, ties broken by label, so the
    fitted floor is deterministic for a given archive and pool.
    """
    matrix = evaluate_pool(archive, scoring, pool)
    cis = {
        label: bootstrap_ci(
            matrix.row(label),
            resamples=resamples,
            alpha=alpha,
            seed=seed,
            stream=(label,),
            method=method,
        )
        for label in matrix.detectors
    }
    best = min(matrix.detectors, key=lambda label: (-cis[label].mean, label))
    return NoiseFloor(matrix=matrix, cis=cis, best=best)
