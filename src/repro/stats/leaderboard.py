"""Deterministic leaderboards with uncertainty, not point estimates.

``build_leaderboard`` is the one-stop aggregation the CLI and the
results store call: per-detector bootstrap CIs, Holm-corrected paired
permutation tests, the Friedman/Nemenyi rank analysis, and (when a
fitted :class:`~repro.stats.noise_floor.NoiseFloor` is supplied) a
real-progress verdict per detector.

Both renderings are canonical: entries are ordered by accuracy then
label, JSON is emitted with sorted keys and fixed separators, and every
number is a pure function of (matrix, noise floor, seed, alpha,
resamples) — so repeated invocations, and invocations fed by serial vs
parallel source runs, produce byte-identical artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .matrix import OutcomeMatrix
from .noise_floor import NoiseFloor
from .pairwise import PairwiseComparison, pairwise_tests
from .ranking import RankAnalysis, rank_analysis
from .resampling import DEFAULT_RESAMPLES, BootstrapCI, bootstrap_ci

__all__ = ["LeaderboardEntry", "Leaderboard", "build_leaderboard"]

LEADERBOARD_VERSION = 1


@dataclass(frozen=True)
class LeaderboardEntry:
    """One detector's row: point estimate, interval, rank, verdict."""

    label: str
    accuracy: float
    correct: int
    n: int
    ci: BootstrapCI
    mean_rank: float
    verdict: str | None  # None when no noise floor was fitted

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "accuracy": self.accuracy,
            "correct": self.correct,
            "n": self.n,
            "ci": self.ci.to_json(),
            "mean_rank": self.mean_rank,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class Leaderboard:
    """A full statistical comparison, ready to print or persist."""

    archive: dict  # name / num_series / fingerprint context (may be empty)
    alpha: float
    resamples: int
    seed: int
    ci_method: str
    entries: tuple[LeaderboardEntry, ...]
    pairwise: tuple[PairwiseComparison, ...]
    ranking: RankAnalysis
    noise_floor: NoiseFloor | None

    def entry(self, label: str) -> LeaderboardEntry:
        for entry in self.entries:
            if entry.label == label:
                return entry
        raise KeyError(f"no leaderboard entry for {label!r}")

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        payload = {
            "version": LEADERBOARD_VERSION,
            "archive": self.archive,
            "alpha": self.alpha,
            "resamples": self.resamples,
            "seed": self.seed,
            "ci_method": self.ci_method,
            "entries": [entry.to_json() for entry in self.entries],
            "pairwise": [comparison.to_json() for comparison in self.pairwise],
            "ranking": self.ranking.to_json(),
            "noise_floor": (
                None if self.noise_floor is None else self.noise_floor.to_json()
            ),
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def format(self) -> str:
        """The human-facing leaderboard table and its supporting tests."""
        header = "leaderboard"
        if self.archive.get("name"):
            header += f": archive {self.archive['name']}"
        if self.entries:
            header += (
                f" ({self.entries[0].n} series, {len(self.entries)} detectors)"
            )
        lines = [
            header,
            f"  alpha {self.alpha:g}, {self.resamples} resamples, "
            f"seed {self.seed}, {self.ci_method} CIs",
            "",
        ]
        for position, entry in enumerate(self.entries, start=1):
            verdict = "" if entry.verdict is None else f"  {entry.verdict}"
            lines.append(
                f"  {position:>2} {entry.label:<36} {entry.ci.format()} "
                f"rank {entry.mean_rank:5.2f}{verdict}"
            )
        if self.noise_floor is not None:
            lines += ["", self.noise_floor.format()]
        lines += ["", self.ranking.format()]
        if self.pairwise:
            lines += ["", "pairwise (paired permutation, Holm-corrected):"]
            for comparison in self.pairwise:
                lines.append("  " + comparison.format())
        return "\n".join(lines)


def build_leaderboard(
    matrix: OutcomeMatrix,
    *,
    archive: dict | None = None,
    noise_floor: NoiseFloor | None = None,
    alpha: float = 0.05,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 7,
    ci_method: str = "bca",
) -> Leaderboard:
    """Aggregate every analysis over one outcome matrix.

    Each detector's bootstrap draws an independent rng substream keyed
    by its label, so adding or removing detectors never perturbs the
    others' intervals.
    """
    ranking = rank_analysis(matrix, alpha=alpha)
    cis = {
        label: bootstrap_ci(
            matrix.row(label),
            resamples=resamples,
            alpha=alpha,
            seed=seed,
            stream=(label,),
            method=ci_method,
        )
        for label in matrix.detectors
    }
    entries = []
    for label in matrix.detectors:
        row = matrix.row(label)
        ci = cis[label]
        entries.append(
            LeaderboardEntry(
                label=label,
                accuracy=float(row.mean()),
                correct=int(row.sum()),
                n=int(row.size),
                ci=ci,
                mean_rank=ranking.rank_of(label),
                verdict=None if noise_floor is None else noise_floor.verdict(ci),
            )
        )
    entries.sort(key=lambda entry: (-entry.accuracy, entry.label))
    comparisons = pairwise_tests(
        matrix, alpha=alpha, resamples=resamples, seed=seed
    )
    return Leaderboard(
        archive=dict(archive or {}),
        alpha=float(alpha),
        resamples=int(resamples),
        seed=int(seed),
        ci_method=ci_method,
        entries=tuple(entries),
        pairwise=tuple(comparisons),
        ranking=ranking,
        noise_floor=noise_floor,
    )
