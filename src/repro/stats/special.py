"""Scipy-free special functions for the statistical comparison engine.

The repo deliberately depends on numpy alone, so the handful of
distribution functions the stats subsystem needs are implemented here:

* standard-normal CDF (via :func:`math.erf`) and quantile function
  (Acklam's rational approximation, |error| < 1.2e-9 — far below the
  Monte-Carlo noise of any bootstrap it feeds);
* the chi-square survival function as a regularized upper incomplete
  gamma (series + Lentz continued fraction, Numerical Recipes style);
* the Nemenyi critical-difference constants ``q_alpha / sqrt(2)`` for
  the infinite-degrees-of-freedom studentized range (Demšar 2006,
  Table 5, extended to 20 treatments as in common CD-diagram
  implementations).

Everything here is a pure deterministic function of its inputs, which
is what lets leaderboard artifacts stay byte-identical across runs.
"""

from __future__ import annotations

import math

__all__ = [
    "norm_cdf",
    "norm_ppf",
    "chi2_sf",
    "nemenyi_q",
    "NEMENYI_ALPHAS",
]


def norm_cdf(x: float) -> float:
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


# Acklam's inverse-normal coefficients (lower region / central / upper).
_PPF_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_PPF_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_PPF_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_PPF_D = (
    7.784695709041462e-03, 3.224671290700398e-01,
    2.445134137142996e00, 3.754408661907416e00,
)
_PPF_LOW = 0.02425


def norm_ppf(p: float) -> float:
    """Standard normal quantile function (inverse CDF)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"norm_ppf needs p in (0, 1), got {p}")
    if p < _PPF_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_PPF_C[0] * q + _PPF_C[1]) * q + _PPF_C[2]) * q + _PPF_C[3]) * q + _PPF_C[4]) * q + _PPF_C[5]
        ) / ((((_PPF_D[0] * q + _PPF_D[1]) * q + _PPF_D[2]) * q + _PPF_D[3]) * q + 1.0)
    if p > 1.0 - _PPF_LOW:
        return -norm_ppf(1.0 - p)
    q = p - 0.5
    r = q * q
    return (
        ((((_PPF_A[0] * r + _PPF_A[1]) * r + _PPF_A[2]) * r + _PPF_A[3]) * r + _PPF_A[4]) * r + _PPF_A[5]
    ) * q / (
        ((((_PPF_B[0] * r + _PPF_B[1]) * r + _PPF_B[2]) * r + _PPF_B[3]) * r + _PPF_B[4]) * r + 1.0
    )


def _gamma_p_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma P(a, x) by series (x < a + 1)."""
    term = 1.0 / a
    total = term
    ap = a
    for _ in range(1000):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * 1e-16:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_q_cf(a: float, x: float) -> float:
    """Upper regularized incomplete gamma Q(a, x) by Lentz's continued
    fraction (x >= a + 1)."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-16:
            break
    return math.exp(-x + a * math.log(x) - math.lgamma(a)) * h


def chi2_sf(x: float, df: int) -> float:
    """Chi-square survival function P(X > x) with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"chi2_sf needs df >= 1, got {df}")
    if x <= 0.0:
        return 1.0
    a, half = df / 2.0, x / 2.0
    if half < a + 1.0:
        return min(1.0, max(0.0, 1.0 - _gamma_p_series(a, half)))
    return min(1.0, max(0.0, _gamma_q_cf(a, half)))


# Nemenyi constants q_alpha / sqrt(2) for the studentized range with
# infinite degrees of freedom, indexed by number of treatments k.
# CD = q * sqrt(k (k + 1) / (6 N)).
_NEMENYI_Q = {
    0.05: (
        1.959964, 2.343701, 2.569032, 2.727774, 2.849705, 2.948320,
        3.030879, 3.101730, 3.163684, 3.218654, 3.268004, 3.312739,
        3.353618, 3.391230, 3.426041, 3.458425, 3.488685, 3.517073,
        3.543799,
    ),
    0.10: (
        1.644854, 2.052293, 2.291341, 2.459516, 2.588521, 2.692732,
        2.779884, 2.854606, 2.919889, 2.977768, 3.029694, 3.076733,
        3.119693, 3.159199, 3.195743, 3.229723, 3.261461, 3.291224,
        3.319233,
    ),
}

NEMENYI_ALPHAS = tuple(sorted(_NEMENYI_Q))
_NEMENYI_MAX_K = len(_NEMENYI_Q[0.05]) + 1


def nemenyi_q(k: int, alpha: float = 0.05) -> float | None:
    """The Nemenyi constant for ``k`` treatments, or None outside the table.

    Only the conventional ``alpha`` levels 0.05 and 0.10 are tabulated;
    callers should fall back to 0.05 (and say so) for anything else.
    """
    column = _NEMENYI_Q.get(alpha)
    if column is None or not 2 <= k <= _NEMENYI_MAX_K:
        return None
    return column[k - 2]
