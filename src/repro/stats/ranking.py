"""Rank analysis: Friedman test and Nemenyi critical-difference cliques.

The Demšar (2006) recipe for comparing detectors over many datasets:
rank the detectors within every series (rank 1 best, ties get average
ranks), test whether the mean ranks could plausibly be equal with the
tie-corrected Friedman chi-square, and — when they cannot — group
detectors whose mean-rank gaps fall inside the Nemenyi critical
difference into cliques, the horizontal bars of a CD diagram.

Boolean correctness makes ties the norm rather than the exception, so
the tie-corrected statistic matters here: with *every* block fully
tied the correction factor hits zero and the test degenerates to
"no evidence of any difference" (statistic 0, p = 1) instead of
dividing by zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matrix import OutcomeMatrix
from .special import chi2_sf, nemenyi_q

__all__ = ["average_ranks", "friedman_test", "nemenyi_cd", "RankAnalysis", "rank_analysis"]


def average_ranks(values: np.ndarray) -> np.ndarray:
    """Within-column ranks of a (detectors × series) matrix, ties averaged.

    Higher values rank better (rank 1 = best), matching "correct beats
    incorrect" for boolean outcome matrices.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {values.shape}")
    k, n = values.shape
    ranks = np.empty((k, n), dtype=float)
    for j in range(n):
        column = values[:, j]
        order = np.argsort(-column, kind="stable")
        ordered = column[order]
        i = 0
        while i < k:
            j2 = i
            while j2 + 1 < k and ordered[j2 + 1] == ordered[i]:
                j2 += 1
            ranks[order[i : j2 + 1], j] = (i + j2) / 2.0 + 1.0
            i = j2 + 1
    return ranks


def friedman_test(values: np.ndarray) -> tuple[float, int, float]:
    """Tie-corrected Friedman test over a (detectors × series) matrix.

    Returns ``(statistic, df, p_value)``.  With fewer than two
    detectors, or with every block completely tied, there is nothing to
    test and the degenerate ``(0.0, max(df, 1), 1.0)`` comes back.
    """
    values = np.asarray(values, dtype=float)
    k, n = values.shape
    if k < 2 or n < 1:
        return 0.0, max(k - 1, 1), 1.0
    ranks = average_ranks(values)
    rank_sums = ranks.sum(axis=1)
    chisq = 12.0 / (n * k * (k + 1)) * float(np.sum(rank_sums**2)) - 3.0 * n * (k + 1)

    # tie correction: 1 - sum(t^3 - t) / (n (k^3 - k)) over tie groups
    tie_mass = 0.0
    for j in range(n):
        _, counts = np.unique(values[:, j], return_counts=True)
        tie_mass += float(np.sum(counts.astype(float) ** 3 - counts))
    correction = 1.0 - tie_mass / (n * (k**3 - k))
    if correction <= 0.0:
        return 0.0, k - 1, 1.0
    statistic = max(0.0, chisq / correction)
    return statistic, k - 1, chi2_sf(statistic, k - 1)


def nemenyi_cd(k: int, n: int, alpha: float = 0.05) -> float | None:
    """Nemenyi critical difference for ``k`` detectors over ``n`` series.

    Two detectors whose mean ranks differ by at least this much are
    significantly different at level ``alpha``.  Returns None when the
    studentized-range table has no entry (k outside 2..20 or an
    untabulated alpha).
    """
    if n < 1:
        return None
    q = nemenyi_q(k, alpha)
    if q is None:
        return None
    return q * float(np.sqrt(k * (k + 1) / (6.0 * n)))


@dataclass(frozen=True)
class RankAnalysis:
    """Mean ranks, the Friedman verdict and the CD cliques for one matrix."""

    detectors: tuple[str, ...]  # sorted by mean rank, best first
    mean_ranks: tuple[float, ...]
    friedman_statistic: float
    friedman_df: int
    friedman_p: float
    cd: float | None
    cd_alpha: float
    cliques: tuple[tuple[str, ...], ...]

    def rank_of(self, label: str) -> float:
        try:
            return self.mean_ranks[self.detectors.index(label)]
        except ValueError:
            raise KeyError(f"unknown detector {label!r}") from None

    def format(self) -> str:
        lines = [
            f"Friedman chi2 = {self.friedman_statistic:.4f} "
            f"(df = {self.friedman_df}), p = {self.friedman_p:.4f}"
        ]
        if self.cd is None:
            lines.append("critical difference: not tabulated for this grid")
        else:
            lines.append(
                f"critical difference (Nemenyi, alpha {self.cd_alpha:g}): "
                f"{self.cd:.3f}"
            )
        for label, rank in zip(self.detectors, self.mean_ranks):
            lines.append(f"  rank {rank:6.3f}  {label}")
        for clique in self.cliques:
            lines.append("  clique: " + " ~ ".join(clique))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "detectors": list(self.detectors),
            "mean_ranks": list(self.mean_ranks),
            "friedman": {
                "statistic": self.friedman_statistic,
                "df": self.friedman_df,
                "p_value": self.friedman_p,
            },
            "cd": self.cd,
            "cd_alpha": self.cd_alpha,
            "cliques": [list(clique) for clique in self.cliques],
        }


def _maximal_cliques(
    labels: list[str], ranks: list[float], cd: float
) -> tuple[tuple[str, ...], ...]:
    """Maximal runs of rank-sorted detectors spanning at most ``cd``."""
    intervals = []
    for i in range(len(labels)):
        j = i
        while j + 1 < len(labels) and ranks[j + 1] - ranks[i] <= cd:
            j += 1
        intervals.append((i, j))
    maximal = [
        (i, j)
        for i, j in intervals
        if not any(
            (oi <= i and j <= oj and (oi, oj) != (i, j)) for oi, oj in intervals
        )
    ]
    return tuple(tuple(labels[i : j + 1]) for i, j in sorted(set(maximal)))


def rank_analysis(matrix: OutcomeMatrix, *, alpha: float = 0.05) -> RankAnalysis:
    """Full Demšar-style rank analysis of an outcome matrix.

    The Nemenyi table only covers alpha 0.05 and 0.10; any other level
    falls back to 0.05 for the CD (and records which level was used in
    ``cd_alpha``) while the Friedman p-value itself is level-free.
    """
    ranks = average_ranks(matrix.values)
    means = ranks.mean(axis=1)
    order = sorted(
        range(matrix.num_detectors),
        key=lambda i: (means[i], matrix.detectors[i]),
    )
    labels = [matrix.detectors[i] for i in order]
    ordered_means = [float(means[i]) for i in order]

    statistic, df, p_value = friedman_test(matrix.values)

    cd_alpha = alpha if nemenyi_q(2, alpha) is not None else 0.05
    cd = nemenyi_cd(matrix.num_detectors, matrix.num_series, cd_alpha)
    if cd is None:
        cliques: tuple[tuple[str, ...], ...] = ()
    else:
        cliques = _maximal_cliques(labels, ordered_means, cd)
    return RankAnalysis(
        detectors=tuple(labels),
        mean_ranks=tuple(ordered_means),
        friedman_statistic=float(statistic),
        friedman_df=int(df),
        friedman_p=float(p_value),
        cd=cd,
        cd_alpha=float(cd_alpha),
        cliques=cliques,
    )
