"""Statistical comparison engine (is the progress real?).

Consumes per-cell outcomes from :class:`~repro.runner.RunReport` (or
saved ``cells.jsonl`` artifacts — no recompute needed) and answers the
question the paper says benchmarks dodge: is detector A *significantly*
better than detector B, and does either clear the one-liner noise
floor?  Bootstrap CIs, paired permutation tests, Friedman/Nemenyi rank
analysis and deterministic leaderboard artifacts, all seeded through
:mod:`repro.rng` so results are byte-reproducible.
"""

from .leaderboard import Leaderboard, LeaderboardEntry, build_leaderboard
from .matrix import OutcomeMatrix
from .noise_floor import (
    VERDICT_BELOW,
    VERDICT_CLEARS,
    VERDICT_WITHIN,
    NoiseFloor,
    PoolMember,
    default_pool,
    evaluate_pool,
    fit_noise_floor,
)
from .pairwise import (
    PairwiseComparison,
    PermutationTest,
    holm_bonferroni,
    paired_permutation_test,
    pairwise_tests,
)
from .ranking import (
    RankAnalysis,
    average_ranks,
    friedman_test,
    nemenyi_cd,
    rank_analysis,
)
from .resampling import BootstrapCI, bootstrap_ci
from .special import chi2_sf, nemenyi_q, norm_cdf, norm_ppf

__all__ = [
    "OutcomeMatrix",
    "BootstrapCI",
    "bootstrap_ci",
    "PermutationTest",
    "PairwiseComparison",
    "paired_permutation_test",
    "holm_bonferroni",
    "pairwise_tests",
    "RankAnalysis",
    "average_ranks",
    "friedman_test",
    "nemenyi_cd",
    "rank_analysis",
    "PoolMember",
    "default_pool",
    "evaluate_pool",
    "NoiseFloor",
    "fit_noise_floor",
    "VERDICT_CLEARS",
    "VERDICT_WITHIN",
    "VERDICT_BELOW",
    "Leaderboard",
    "LeaderboardEntry",
    "build_leaderboard",
    "norm_cdf",
    "norm_ppf",
    "chi2_sf",
    "nemenyi_q",
]
