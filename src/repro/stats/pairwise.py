"""Paired permutation tests between detectors, with Holm correction.

Two detectors evaluated on the *same* series form matched pairs, so
the right null model permutes within pairs: under "no difference",
each per-series outcome difference is symmetric around zero and its
sign can be flipped.  The test statistic is the summed difference;
the two-sided p-value is the fraction of sign assignments at least as
extreme as observed.

Series where both detectors agree contribute nothing and are dropped,
which makes the test *exact* whenever the number of disagreements is
small enough to enumerate every sign pattern (the common case on
archive-sized runs — 2^m patterns for m disagreements).  Larger
disagreement counts fall back to a seeded Monte-Carlo sign-flip with
the add-one p-value correction, drawn through :func:`repro.rng.rng_for`
so results stay reproducible.

Running every pair inflates the family-wise error rate, so
:func:`pairwise_tests` reports Holm–Bonferroni adjusted p-values — the
uniformly-more-powerful replacement for plain Bonferroni.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import rng_for
from .matrix import OutcomeMatrix

__all__ = [
    "PermutationTest",
    "PairwiseComparison",
    "paired_permutation_test",
    "holm_bonferroni",
    "pairwise_tests",
]

# 2^16 enumerated sign patterns (~1 MB as int8) is cheap; beyond that
# Monte Carlo with `resamples` draws is indistinguishable in practice.
MAX_EXACT_DISAGREEMENTS = 16


@dataclass(frozen=True)
class PermutationTest:
    """Outcome of one paired sign-flip permutation test."""

    mean_diff: float
    p_value: float
    exact: bool
    n_pairs: int
    n_disagreements: int


def paired_permutation_test(
    x,
    y,
    *,
    resamples: int = 2000,
    seed: int = 7,
    stream: tuple = (),
) -> PermutationTest:
    """Two-sided paired sign-flip permutation test on matched vectors."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError(f"paired vectors differ in length: {x.size} vs {y.size}")
    if x.size == 0:
        raise ValueError("cannot test empty paired vectors")
    diffs = x - y
    nonzero = diffs[diffs != 0.0]
    m = nonzero.size
    mean_diff = float(diffs.mean())
    if m == 0:
        # all-identical outcomes: every sign assignment reproduces the
        # observed (zero) statistic, so the p-value is exactly 1
        return PermutationTest(
            mean_diff=mean_diff, p_value=1.0, exact=True,
            n_pairs=int(x.size), n_disagreements=0,
        )
    observed = abs(float(nonzero.sum()))
    tolerance = 1e-9 * max(1.0, observed)
    if m <= MAX_EXACT_DISAGREEMENTS:
        patterns = np.arange(1 << m, dtype=np.uint32)
        bits = (patterns[:, None] >> np.arange(m, dtype=np.uint32)) & 1
        signs = bits.astype(np.int8) * 2 - 1
        totals = signs @ nonzero
        count = int(np.count_nonzero(np.abs(totals) >= observed - tolerance))
        return PermutationTest(
            mean_diff=mean_diff,
            p_value=count / float(1 << m),
            exact=True,
            n_pairs=int(x.size),
            n_disagreements=int(m),
        )
    rng = rng_for(seed, "stats.permutation", *stream)
    signs = rng.integers(0, 2, size=(resamples, m)).astype(np.int8) * 2 - 1
    totals = signs @ nonzero
    count = int(np.count_nonzero(np.abs(totals) >= observed - tolerance))
    return PermutationTest(
        mean_diff=mean_diff,
        p_value=(count + 1) / float(resamples + 1),
        exact=False,
        n_pairs=int(x.size),
        n_disagreements=int(m),
    )


def holm_bonferroni(p_values) -> list[float]:
    """Holm–Bonferroni step-down adjusted p-values, in input order."""
    p_values = [float(p) for p in p_values]
    m = len(p_values)
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, index in enumerate(order):
        running = max(running, (m - rank) * p_values[index])
        adjusted[index] = min(1.0, running)
    return adjusted


@dataclass(frozen=True)
class PairwiseComparison:
    """One detector pair's test, annotated with the Holm correction."""

    a: str
    b: str
    mean_diff: float  # accuracy(a) - accuracy(b)
    wins_a: int
    wins_b: int
    p_value: float
    p_holm: float
    significant: bool
    exact: bool
    n_pairs: int

    def format(self) -> str:
        kind = "exact" if self.exact else "mc"
        mark = " *" if self.significant else ""
        return (
            f"{self.a} vs {self.b}: Δ{self.mean_diff:+.3f} "
            f"({self.wins_a}-{self.wins_b}) p={self.p_value:.4f} "
            f"holm={self.p_holm:.4f} [{kind}]{mark}"
        )

    def to_json(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "mean_diff": self.mean_diff,
            "wins_a": self.wins_a,
            "wins_b": self.wins_b,
            "p_value": self.p_value,
            "p_holm": self.p_holm,
            "significant": self.significant,
            "exact": self.exact,
            "n_pairs": self.n_pairs,
        }


def pairwise_tests(
    matrix: OutcomeMatrix,
    *,
    alpha: float = 0.05,
    resamples: int = 2000,
    seed: int = 7,
) -> list[PairwiseComparison]:
    """All unordered detector pairs, Holm-corrected at level ``alpha``.

    Pairs are enumerated in matrix row order, which is deterministic
    grid order for engine-produced matrices.
    """
    pairs = [
        (matrix.detectors[i], matrix.detectors[j])
        for i in range(matrix.num_detectors)
        for j in range(i + 1, matrix.num_detectors)
    ]
    tests = []
    for a, b in pairs:
        row_a, row_b = matrix.row(a), matrix.row(b)
        tests.append(
            (
                paired_permutation_test(
                    row_a, row_b,
                    resamples=resamples, seed=seed, stream=(a, b),
                ),
                int(np.count_nonzero(row_a & ~row_b)),
                int(np.count_nonzero(row_b & ~row_a)),
            )
        )
    adjusted = holm_bonferroni([test.p_value for test, _, _ in tests])
    return [
        PairwiseComparison(
            a=a,
            b=b,
            mean_diff=test.mean_diff,
            wins_a=wins_a,
            wins_b=wins_b,
            p_value=test.p_value,
            p_holm=p_holm,
            significant=p_holm <= alpha,
            exact=test.exact,
            n_pairs=test.n_pairs,
        )
        for (a, b), (test, wins_a, wins_b), p_holm in zip(pairs, tests, adjusted)
    ]
