"""The outcome matrix: detectors × series boolean correctness.

Every analysis in :mod:`repro.stats` consumes this one shape — a
rectangular boolean matrix whose rows are detector labels and whose
columns are series names, ``values[i, j]`` meaning "detector i answered
series j correctly under the run's scoring protocol".  It is built from
live :class:`~repro.runner.RunReport` cells or from saved
``cells.jsonl`` artifacts; both paths accept anything cell-shaped
(objects or dicts with ``detector``/``series``/``correct``), so the
stats layer never imports the runner.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

__all__ = ["OutcomeMatrix"]


def _cell_field(cell, name: str):
    if isinstance(cell, dict):
        return cell[name]
    return getattr(cell, name)


@dataclass(frozen=True, eq=False)
class OutcomeMatrix:
    """Rectangular detector × series correctness matrix."""

    detectors: tuple[str, ...]
    series: tuple[str, ...]
    values: np.ndarray  # bool, shape (len(detectors), len(series))

    def __eq__(self, other) -> bool:
        # the generated dataclass __eq__ trips over numpy broadcasting
        if not isinstance(other, OutcomeMatrix):
            return NotImplemented
        return (
            self.detectors == other.detectors
            and self.series == other.series
            and np.array_equal(self.values, other.values)
        )

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=bool)
        expected = (len(self.detectors), len(self.series))
        if values.shape != expected:
            raise ValueError(
                f"outcome matrix shape {values.shape} != {expected}"
            )
        if len(set(self.detectors)) != len(self.detectors):
            raise ValueError("duplicate detector labels in outcome matrix")
        if len(set(self.series)) != len(self.series):
            raise ValueError("duplicate series names in outcome matrix")
        object.__setattr__(self, "values", values)

    @classmethod
    def from_cells(cls, cells: Iterable) -> "OutcomeMatrix":
        """Build from cell records (dicts or ``CellResult``-likes).

        Detector and series order follow first appearance, which for
        engine output is deterministic grid order.  The grid must be
        rectangular: every detector needs an outcome for every series.
        """
        by_detector: dict[str, dict[str, bool]] = {}
        series_order: list[str] = []
        seen_series: set[str] = set()
        for cell in cells:
            detector = str(_cell_field(cell, "detector"))
            series = str(_cell_field(cell, "series"))
            row = by_detector.setdefault(detector, {})
            if series in row:
                raise ValueError(
                    f"duplicate cell {detector!r} x {series!r}"
                )
            row[series] = bool(_cell_field(cell, "correct"))
            if series not in seen_series:
                seen_series.add(series)
                series_order.append(series)
        if not by_detector:
            raise ValueError("no cells to build an outcome matrix from")
        for detector, row in by_detector.items():
            missing = [name for name in series_order if name not in row]
            if missing:
                raise ValueError(
                    f"detector {detector!r} has no outcome for series "
                    f"{missing[0]!r}; the cell grid is not rectangular"
                )
        detectors = tuple(by_detector)
        values = np.array(
            [
                [by_detector[d][name] for name in series_order]
                for d in detectors
            ],
            dtype=bool,
        )
        return cls(detectors=detectors, series=tuple(series_order), values=values)

    # -- views -------------------------------------------------------

    @property
    def num_detectors(self) -> int:
        return len(self.detectors)

    @property
    def num_series(self) -> int:
        return len(self.series)

    def row(self, label: str) -> np.ndarray:
        """One detector's correctness vector over all series."""
        try:
            index = self.detectors.index(label)
        except ValueError:
            raise KeyError(
                f"unknown detector {label!r}; have {list(self.detectors)}"
            ) from None
        return self.values[index]

    def accuracy(self, label: str) -> float:
        return float(self.row(label).mean())

    def accuracies(self) -> dict[str, float]:
        """Label → accuracy, in matrix row order."""
        return {label: self.accuracy(label) for label in self.detectors}

    def stack(self, other: "OutcomeMatrix") -> "OutcomeMatrix":
        """Concatenate another matrix's rows (must share the series axis)."""
        if other.series != self.series:
            raise ValueError("cannot stack matrices over different series")
        return OutcomeMatrix(
            detectors=self.detectors + other.detectors,
            series=self.series,
            values=np.vstack([self.values, other.values]),
        )

    def to_json(self) -> dict:
        """JSON-ready mapping (bools as 0/1 row lists)."""
        return {
            "detectors": list(self.detectors),
            "series": list(self.series),
            "values": [[int(v) for v in row] for row in self.values],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "OutcomeMatrix":
        return cls(
            detectors=tuple(payload["detectors"]),
            series=tuple(payload["series"]),
            values=np.asarray(payload["values"], dtype=bool),
        )
