"""Classical statistical detectors.

:class:`CusumDetector` implements Page's cumulative-sum change detector —
the paper's reference [1] (Page 1957) and the literal "papers dating back
to the dawn of computer science" method.  :class:`EwmaDetector` is the
exponentially-weighted control chart, another decades-old baseline.
"""

from __future__ import annotations

import numpy as np

from .base import Detector

__all__ = ["CusumDetector", "EwmaDetector"]


class CusumDetector(Detector):
    """Two-sided CUSUM (Page 1957) on standardized values.

    Scores are ``max(S+, S-)`` where ``S+`` accumulates standardized
    exceedances above ``drift`` and ``S-`` below ``-drift``.  The
    baseline mean/std are learned from ``fit`` (or, untrained, from the
    first ``warmup`` points of the scored series).
    """

    def __init__(self, drift: float = 0.5, warmup: int = 100) -> None:
        self.drift = drift
        self.warmup = warmup
        self._mean: float | None = None
        self._std: float | None = None

    def fit(self, train: np.ndarray) -> "CusumDetector":
        train = np.asarray(train, dtype=float)
        if train.size >= 2:
            self._mean = float(train.mean())
            self._std = float(train.std()) or 1.0
        return self

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return values.copy()
        if self._mean is None:
            head = values[: max(2, min(self.warmup, values.size))]
            mean, std = float(head.mean()), float(head.std()) or 1.0
        else:
            mean, std = self._mean, self._std
        z = (values - mean) / std
        high = np.empty(values.size)
        low = np.empty(values.size)
        up = down = 0.0
        for i, value in enumerate(z):
            up = max(0.0, up + value - self.drift)
            down = max(0.0, down - value - self.drift)
            high[i] = up
            low[i] = down
        return np.maximum(high, low)


class EwmaDetector(Detector):
    """EWMA control chart: score = |x - ewma| / control-limit scale."""

    def __init__(self, alpha: float = 0.1, warmup: int = 100) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.warmup = warmup
        self._std: float | None = None

    def fit(self, train: np.ndarray) -> "EwmaDetector":
        train = np.asarray(train, dtype=float)
        if train.size >= 2:
            self._std = float(train.std()) or 1.0
        return self

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return values.copy()
        if self._std is None:
            head = values[: max(2, min(self.warmup, values.size))]
            std = float(head.std()) or 1.0
        else:
            std = self._std
        smooth = np.empty(values.size)
        level = values[0]
        for i, value in enumerate(values):
            smooth[i] = level
            level = self.alpha * value + (1.0 - self.alpha) * level
        # control limit scale: sigma * sqrt(alpha / (2 - alpha))
        scale = std * np.sqrt(self.alpha / (2.0 - self.alpha)) or 1.0
        return np.abs(values - smooth) / scale
