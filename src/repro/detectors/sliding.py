"""Shared sliding-window statistics for the numeric core.

Every detector in the matrix-profile family needs the same per-window
quantities — moving mean, moving (population) std, an exact
constant-window mask, and sliding extrema.  Before this module each
consumer had its own copy with its own asymptotics; everything here is
O(n) in the series length, independent of the window:

* mean/std come from prefix sums of the globally mean-shifted series
  (the shift guards against catastrophic cancellation when the series
  mean dwarfs the deviations);
* constant windows are detected by *exact* equality of the sliding max
  and min of the raw values — the cumsum-based std carries ~sqrt(eps)
  noise, so thresholding it would misclassify;
* sliding max/min use the Gil-Werman (van Herk) two-sweep algorithm,
  the vectorized equivalent of a monotonic deque: one forward and one
  backward running extremum per length-``w`` block plus one combine
  pass, i.e. three vector passes whatever ``w`` is.  A Python-level
  deque has the same O(n) bound but pays interpreter overhead per
  element, which loses even to the vectorized O(n·w) stride trick for
  every realistic window length.

:class:`SlidingStats` caches the prefix sums so multi-length consumers
(MERLIN's candidate-length sweep) pay the O(n) setup once per series
instead of once per length.  Every per-window query is additionally
**chunk-aware**: ``mean_std``/``kernel_stats``/``constant_mask`` accept
a ``(start, stop)`` column range and then touch only O(stop − start)
memory (:func:`chunk_spans` yields matching spans) — the query surface
for consumers that process windows in bounded tiles.  Note the
column-chunked mpx kernel itself still takes full-range stats: its
diagonal recurrence reads every column's terms in each block, so the
O(n) vectors are irreducible there (see docs/kernel.md).  Sliced
results are exactly equal to the same slice of a full-range call: the
prefix-sum subtraction is element-wise and the constant mask compares
exact sliding extrema, so no rounding depends on the chunking.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "sliding_max",
    "sliding_min",
    "moving_mean_std",
    "chunk_spans",
    "SlidingStats",
]


def chunk_spans(total: int, width: int | None) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` column spans of at most ``width``.

    ``width=None`` (or any width >= ``total``) yields the single span
    ``(0, total)`` — the unchunked layout.  The final span is short
    whenever ``width`` does not divide ``total``.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if width is None:
        width = total
    else:
        width = int(width)
        if width < 1:
            raise ValueError(f"chunk width must be >= 1, got {width}")
    for start in range(0, total, max(width, 1)):
        yield start, min(start + width, total)


def _as_float_1d(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {array.shape}")
    return array


def _sliding_extreme(values: np.ndarray, w: int, *, minimum: bool) -> np.ndarray:
    """Extremum of every full length-``w`` window in three vector passes.

    Gil-Werman: split the series into length-``w`` blocks, take running
    extrema forward and backward within each block, then every window —
    which by construction spans at most one block boundary — is the
    combination of one suffix and one prefix value.
    """
    array = _as_float_1d(values)
    n = array.size
    if w < 1:
        raise ValueError(f"window length must be >= 1, got {w}")
    if w > n:
        raise ValueError(f"window length {w} exceeds series length {n}")
    if w == 1:
        return array.copy()
    combine = np.minimum if minimum else np.maximum
    fill = np.inf if minimum else -np.inf
    num_blocks = -(-n // w)
    padded = np.full(num_blocks * w, fill)
    padded[:n] = array
    blocks = padded.reshape(num_blocks, w)
    prefix = combine.accumulate(blocks, axis=1).reshape(-1)
    suffix = combine.accumulate(blocks[:, ::-1], axis=1)[:, ::-1].reshape(-1)
    return combine(suffix[: n - w + 1], prefix[w - 1 : n])


def sliding_max(values: np.ndarray, w: int) -> np.ndarray:
    """Maximum of every full length-``w`` window (O(n), any ``w``)."""
    return _sliding_extreme(values, w, minimum=False)


def sliding_min(values: np.ndarray, w: int) -> np.ndarray:
    """Minimum of every full length-``w`` window (O(n), any ``w``)."""
    return _sliding_extreme(values, w, minimum=True)


class SlidingStats:
    """Prefix-sum cache: O(n − w) mean/std for *any* window length.

    Built once per series; every :meth:`mean_std` / :meth:`kernel_stats`
    call is then O(n − w + 1) with no dependence on ``w``.  The series
    is shifted by its global mean before the prefix sums are taken so
    windowed second moments do not cancel catastrophically; the shift
    is added back where the caller asks for unshifted means.
    """

    __slots__ = (
        "values",
        "n",
        "shift",
        "shifted",
        "scale",
        "_prefix",
        "_prefix_sq",
    )

    def __init__(self, values: np.ndarray) -> None:
        self.values = _as_float_1d(values)
        self.n = self.values.size
        self.shift = float(self.values.mean()) if self.n else 0.0
        self.shifted = self.values - self.shift
        self.scale = float(np.abs(self.shifted).max()) if self.n else 0.0
        self._prefix = np.concatenate(([0.0], np.cumsum(self.shifted)))
        self._prefix_sq = np.concatenate(
            ([0.0], np.cumsum(self.shifted * self.shifted))
        )

    def window_count(self, w: int) -> int:
        """Number of full length-``w`` windows."""
        return self.n - w + 1

    def _span(self, w: int, start: int, stop: int | None) -> tuple[int, int]:
        """Validate a ``[start, stop)`` window-start range for length ``w``."""
        m = self.window_count(w)
        stop = m if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= m:
            raise ValueError(
                f"window-start span [{start}, {stop}) out of range for "
                f"{m} length-{w} windows"
            )
        return start, stop

    def shifted_mean_std(
        self, w: int, start: int = 0, stop: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean of the *shifted* series and population std per window.

        ``start``/``stop`` restrict the answer to windows starting in
        ``[start, stop)`` using O(stop − start) memory; the slice is
        exactly equal to the same slice of the full-range call.
        """
        start, stop = self._span(w, start, stop)
        sums = self._prefix[start + w : stop + w] - self._prefix[start:stop]
        sums_sq = (
            self._prefix_sq[start + w : stop + w] - self._prefix_sq[start:stop]
        )
        mean = sums / w
        variance = np.maximum(sums_sq / w - mean * mean, 0.0)
        return mean, np.sqrt(variance)

    def mean_std(
        self, w: int, start: int = 0, stop: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean and population std of length-``w`` windows in the span."""
        mean, std = self.shifted_mean_std(w, start, stop)
        return mean + self.shift, std

    def constant_mask(
        self, w: int, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Exactly-constant windows, via sliding extrema of raw values.

        Chunk-aware: a ``[start, stop)`` span runs the extrema over just
        the covered points.  The comparisons are exact equalities on raw
        values, so the sliced mask equals the full mask's slice.
        """
        start, stop = self._span(w, start, stop)
        if start == stop:
            return np.empty(0, dtype=bool)
        covered = self.values[start : stop + w - 1]
        return sliding_max(covered, w) == sliding_min(covered, w)

    def kernel_stats(
        self, w: int, start: int = 0, stop: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(shifted_mean, inv_scaled_std, constant)`` for the mpx kernel.

        ``inv_scaled_std[i]`` is ``1 / (sqrt(w) * std[i])`` — the factor
        that turns a windowed covariance into a Pearson correlation —
        and exactly 0 for constant windows, which the kernel fixes up in
        a dedicated post-pass.  ``start``/``stop`` restrict the result
        to a window-start span in O(stop − start) memory (chunk-aware
        slicing; values match the full call's slice exactly).
        """
        mean, std = self.shifted_mean_std(w, start, stop)
        constant = self.constant_mask(w, start, stop)
        inv = np.zeros_like(std)
        active = ~constant
        # a near-constant window can underflow the cumsum variance to 0
        # without being exactly constant; floor the std *relative to the
        # series scale* so inv stays below ~1/(sqrt(w)·eps·scale) and
        # the sweep's corr products stay finite (an absolute 1e-300
        # floor let inv reach ~1e300, where inv_i·inv_j overflows to
        # inf and inf·0 against an exactly-constant window's inv = 0
        # turns into NaN, which the max-tracking then propagates).  The
        # floored correlations are huge but finite; the final clip to
        # [-1, 1] handles them.
        floor = max(np.finfo(float).eps * self.scale, np.finfo(float).tiny)
        inv[active] = 1.0 / (np.sqrt(w) * np.maximum(std[active], floor))
        return mean, inv, constant


def moving_mean_std(values: np.ndarray, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean and population std of every length-``w`` window (O(n))."""
    return SlidingStats(values).mean_std(w)
