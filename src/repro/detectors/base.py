"""Detector protocol.

Every detector maps a series to a per-point anomaly score (higher = more
anomalous) and supports the UCR protocol of returning the single most
likely anomaly location.  Training is optional: detectors that need a
clean prefix (Telemanom, kNN) use it; parameter-free methods (discords)
ignore it — mirroring Fig 13's caption, "Discord uses no training data".
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..types import LabeledSeries

__all__ = ["Detector"]


class Detector(ABC):
    """Base class: ``fit`` on a clean prefix, ``score`` any series."""

    @property
    def name(self) -> str:
        """Display name; defaults to the class name."""
        return type(self).__name__

    def fit(self, train: np.ndarray) -> "Detector":
        """Learn from an anomaly-free prefix.  Default: no-op."""
        return self

    @abstractmethod
    def score(self, values: np.ndarray) -> np.ndarray:
        """Per-point anomaly scores, same length as ``values``.

        Higher means more anomalous.  Points the method cannot score
        (warm-up regions, subsequence tails) must be ``-inf`` or the
        method's minimum, never NaN.
        """

    def locate(self, series: LabeledSeries) -> int:
        """UCR protocol: index of the most anomalous point in the test
        region, in full-series coordinates.

        Fits on the series' training prefix, scores the whole series and
        masks the training region out of the argmax.
        """
        self.fit(series.train)
        scores = np.asarray(self.score(series.values), dtype=float)
        if scores.shape != series.values.shape:
            raise ValueError(
                f"{self.name}.score returned shape {scores.shape}, "
                f"expected {series.values.shape}"
            )
        scores = np.where(np.isnan(scores), -np.inf, scores)
        scores[: series.train_len] = -np.inf
        return int(np.argmax(scores))

    def __repr__(self) -> str:
        return f"<{self.name}>"
