"""Trivial baseline detectors.

These are the paper's "one line of code and a few minutes of effort"
methods, packaged behind the common :class:`Detector` API so the benches
can compare them head-to-head with heavier machinery.  It also contains
the two *diagnostic* baselines the paper's flaw analysis motivates:

* :class:`NaiveLastPointDetector` — exploits run-to-failure bias (§2.5):
  "a naive algorithm that simply labels the last point as an anomaly has
  an excellent chance of being correct".
* :class:`RandomScoreDetector` — the null detector used by the
  point-adjust ablation.
"""

from __future__ import annotations

import numpy as np

from ..oneliner.expressions import OneLiner
from ..oneliner.primitives import movmean, movstd
from .base import Detector

__all__ = [
    "DiffDetector",
    "MovingZScoreDetector",
    "MovingStdDetector",
    "ConstantRunDetector",
    "NaiveLastPointDetector",
    "RandomScoreDetector",
    "OneLinerDetector",
]


class DiffDetector(Detector):
    """Score = |first difference| — the engine of one-liner family (3)."""

    def __init__(self, absolute: bool = True) -> None:
        self.absolute = absolute

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        out = np.full(values.shape, -np.inf)
        if values.size < 2:
            return out
        step = np.diff(values)
        out[1:] = np.abs(step) if self.absolute else step
        return out


class MovingZScoreDetector(Detector):
    """Score = |x - movmean| / movstd over a centered window."""

    def __init__(self, k: int = 50, epsilon: float = 1e-9) -> None:
        if k < 3:
            raise ValueError(f"window must be >= 3, got {k}")
        self.k = k
        self.epsilon = epsilon

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return values.copy()
        center = movmean(values, self.k)
        scale = movstd(values, self.k) + self.epsilon
        return np.abs(values - center) / scale


class MovingStdDetector(Detector):
    """Score = movstd(TS, k) — Fig 2's one-liner as a detector."""

    def __init__(self, k: int = 5) -> None:
        if k < 2:
            raise ValueError(f"window must be >= 2, got {k}")
        self.k = k

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return values.copy()
        return movstd(values, self.k)


class ConstantRunDetector(Detector):
    """Score = length of the constant run ending at each point.

    The paper's NASA freeze detector ("a dynamic time series suddenly
    becoming exactly constant"), graded rather than binary so it can be
    ranked and located.
    """

    def __init__(self, atol: float = 0.0) -> None:
        self.atol = atol

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        out = np.zeros(values.shape)
        if values.size < 2:
            return out
        flat = np.abs(np.diff(values)) <= self.atol
        run = 0
        for j, is_flat in enumerate(flat):
            run = run + 1 if is_flat else 0
            out[j + 1] = run
        return out


class NaiveLastPointDetector(Detector):
    """Scores each point by its index: always picks the series end."""

    def score(self, values: np.ndarray) -> np.ndarray:
        return np.arange(np.asarray(values).size, dtype=float)


class RandomScoreDetector(Detector):
    """I.i.d. uniform scores — the null hypothesis of every benchmark."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def score(self, values: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.uniform(size=np.asarray(values).size)


class OneLinerDetector(Detector):
    """Adapt any :class:`~repro.oneliner.expressions.OneLiner` to a Detector."""

    def __init__(self, oneliner: OneLiner) -> None:
        self.oneliner = oneliner

    @property
    def name(self) -> str:
        return f"OneLiner[{self.oneliner.code}]"

    def score(self, values: np.ndarray) -> np.ndarray:
        return self.oneliner.score(values)
