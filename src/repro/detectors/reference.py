"""Retained reference kernels for the matrix profile.

The production kernel (:func:`repro.detectors.matrix_profile.matrix_profile`)
is an mpx-style diagonal traversal.  This module keeps two slower
implementations around on purpose:

* :func:`naive_profile` — the textbook O(n²·w) brute force: z-normalize
  every window explicitly and measure every pairwise distance.  It has
  no recurrences at all, so it is the accuracy gold standard the
  property tests compare against, and the baseline ``repro bench``
  reports kernel speedups over.
* :func:`stomp_profile` — the per-row STOMP loop this repository
  shipped before the mpx rewrite, kept verbatim so equivalence can be
  re-checked forever and so the bench can report the before/after of
  the refactor itself.

Neither belongs on a hot path.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .matrix_profile import (
    MatrixProfileResult,
    moving_mean_std,
    sliding_dot_products,
)

__all__ = ["naive_profile", "stomp_profile"]


def _validate(values: np.ndarray, w: int) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if w < 3:
        raise ValueError(f"window must be >= 3, got {w}")
    if values.size < 2 * w:
        raise ValueError(
            f"series of length {values.size} too short for window {w} "
            "(need at least 2*w points)"
        )
    return values


def naive_profile(
    values: np.ndarray,
    w: int,
    exclusion: int | None = None,
    row_limit: int | None = None,
) -> MatrixProfileResult:
    """Brute-force O(n²·w) z-normalized self-join matrix profile.

    ``row_limit`` computes only the first ``row_limit`` rows (profile
    and indices are truncated to that length) so the bench can time a
    representative slice and extrapolate — every row costs the same
    O(n·w), so the extrapolation is exact in expectation.
    """
    values = _validate(values, w)
    n = values.size
    if exclusion is None:
        exclusion = w
    num_subs = n - w + 1
    rows = num_subs if row_limit is None else min(row_limit, num_subs)

    windows = sliding_window_view(values, w)
    mean = windows.mean(axis=1, keepdims=True)
    std = windows.std(axis=1, keepdims=True)
    constant = windows.max(axis=1) == windows.min(axis=1)
    znormed = np.where(
        constant[:, None], 0.0, (windows - mean) / np.where(constant[:, None], 1.0, std)
    )

    profile = np.full(rows, np.inf)
    indices = np.zeros(rows, dtype=int)
    offsets = np.arange(num_subs)
    for i in range(rows):
        if constant[i]:
            # constant-to-constant distance is 0, constant-to-anything
            # else is sqrt(w) (the other window's z-norm has norm sqrt(w))
            dist = np.where(constant, 0.0, np.sqrt(w))
        else:
            delta = znormed - znormed[i]
            dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        dist = np.where(np.abs(offsets - i) < exclusion, np.inf, dist)
        j = int(np.argmin(dist))
        profile[i] = dist[j]
        indices[i] = j
    return MatrixProfileResult(w=w, profile=profile, indices=indices)


def stomp_profile(
    values: np.ndarray, w: int, exclusion: int | None = None
) -> MatrixProfileResult:
    """The pre-mpx per-row STOMP kernel, retained verbatim.

    MASS (FFT sliding dot products) for the first row, then an O(n)
    update per row — with a Python-level loop iteration and ~6 temporary
    allocations per subsequence, which is exactly why it was replaced.
    """
    values = _validate(values, w)
    n = values.size
    if exclusion is None:
        exclusion = w
    num_subs = n - w + 1
    mean, std = moving_mean_std(values, w)
    # exact constant-window detection: cumsum-based std has ~sqrt(eps)
    # noise, so compare window extrema instead
    windows = sliding_window_view(values, w)
    constant = windows.max(axis=1) == windows.min(axis=1)
    std = np.where(constant, 0.0, std)

    profile = np.full(num_subs, np.inf)
    indices = np.zeros(num_subs, dtype=int)
    first_qt = sliding_dot_products(values[:w], values)
    qt = first_qt.copy()
    offsets = np.arange(num_subs)

    for i in range(num_subs):
        if i > 0:
            qt[1:] = (
                qt[:-1]
                - values[: num_subs - 1] * values[i - 1]
                + values[w : w + num_subs - 1] * values[i + w - 1]
            )
            qt[0] = first_qt[i]
        if constant[i]:
            # distance to non-constant windows is sqrt(w), to constant 0
            dist = np.where(constant, 0.0, np.sqrt(w))
        else:
            denominator = w * std[i] * std
            correlation = np.where(
                constant,
                0.0,
                (qt - w * mean[i] * mean) / np.where(constant, 1.0, denominator),
            )
            correlation = np.clip(correlation, -1.0, 1.0)
            dist = np.sqrt(2.0 * w * (1.0 - correlation))
            dist = np.where(constant, np.sqrt(w), dist)
        mask = np.abs(offsets - i) < exclusion
        dist = np.where(mask, np.inf, dist)
        j = int(np.argmin(dist))
        profile[i] = dist[j]
        indices[i] = j
    return MatrixProfileResult(w=w, profile=profile, indices=indices)
