"""Sliding-window k-nearest-neighbour distance detector.

The "decade-old simple ideas" the paper urges the community to remember
(§4.5): score each test subsequence by its distance to the k-th nearest
subsequence of the anomaly-free training prefix.  With z-normalization
this is the classic nearest-neighbour novelty detector that discord
papers compare against.
"""

from __future__ import annotations

import numpy as np

from .base import Detector
from .matrix_profile import subsequence_to_point_scores

__all__ = ["KnnDistanceDetector"]

_EPS = 1e-12


def _window_matrix(values: np.ndarray, w: int, znorm: bool) -> np.ndarray:
    windows = np.lib.stride_tricks.sliding_window_view(
        np.asarray(values, dtype=float), w
    )
    if not znorm:
        return np.ascontiguousarray(windows)
    mean = windows.mean(axis=1, keepdims=True)
    std = windows.std(axis=1, keepdims=True)
    return (windows - mean) / np.maximum(std, _EPS)


class KnnDistanceDetector(Detector):
    """Distance of each subsequence to its k-th nearest train subsequence."""

    def __init__(
        self,
        w: int = 100,
        k: int = 1,
        znorm: bool = True,
        train_stride: int = 1,
        chunk: int = 512,
    ) -> None:
        if w < 2:
            raise ValueError(f"window must be >= 2, got {w}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.w = w
        self.k = k
        self.znorm = znorm
        self.train_stride = train_stride
        self.chunk = chunk
        self._train_windows: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None

    @property
    def name(self) -> str:
        return f"kNN(w={self.w},k={self.k})"

    def fit(self, train: np.ndarray) -> "KnnDistanceDetector":
        train = np.asarray(train, dtype=float)
        if train.size >= self.w + self.k:
            windows = _window_matrix(train, self.w, self.znorm)
            self._train_windows = np.ascontiguousarray(windows[:: self.train_stride])
            # squared norms for the ‖a−b‖² = ‖a‖² − 2a·b + ‖b‖² expansion:
            # query-independent, so they belong to fit(), not score()
            self._train_sq = np.einsum(
                "ij,ij->i", self._train_windows, self._train_windows
            )
        return self

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        n = values.size
        if self._train_windows is None:
            # untrained fallback: treat the leading third as reference
            split = max(self.w + self.k, n // 3)
            self.fit(values[:split])
        if self._train_windows is None or n < self.w:
            return np.full(n, -np.inf)
        reference = self._train_windows
        queries = _window_matrix(values, self.w, self.znorm)
        ref_sq = self._train_sq
        kth = min(self.k, reference.shape[0]) - 1
        distances = np.empty(queries.shape[0])
        for start in range(0, queries.shape[0], self.chunk):
            block = queries[start : start + self.chunk]
            block_sq = np.einsum("ij,ij->i", block, block)
            sq = block_sq[:, None] + ref_sq[None, :] - 2.0 * block @ reference.T
            np.maximum(sq, 0.0, out=sq)
            sq.partition(kth, axis=1)
            distances[start : start + self.chunk] = np.sqrt(sq[:, kth])
        return subsequence_to_point_scores(distances, self.w, n)
