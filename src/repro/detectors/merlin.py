"""MERLIN-lite: parameter-free discord discovery across lengths.

The paper's reference [19] (Nakamura et al., ICDM 2020) removes the
discord's window-length parameter by searching *all* lengths in a range.
The original uses the DRAG candidate-selection algorithm for speed; this
reproduction keeps MERLIN's semantics — the discord of each length,
distances made comparable across lengths by normalizing with ``sqrt(w)``
— on top of the exact mpx self-join.

Two things keep the length sweep cheap:

* one :class:`~repro.detectors.sliding.SlidingStats` per series — the
  prefix sums behind every length's mean/std are computed once, so each
  candidate length pays O(m) setup instead of O(n);
* optional DRAG-style early abandonment (``early_abandon=True``): the
  best length-normalized discord found so far is a floor, and a
  candidate length aborts mid-sweep as soon as every subsequence
  already has a neighbour at or below that floor — such a length cannot
  change the winner.  Abandoned lengths are left out of the result, so
  the default stays ``False`` to preserve the exact per-length report;
  the overall :attr:`MerlinResult.best` is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Detector
from .matrix_profile import discord_search, matrix_profile, subsequence_to_point_scores
from .sliding import SlidingStats

__all__ = ["MerlinResult", "merlin", "MerlinDetector"]


@dataclass(frozen=True)
class MerlinResult:
    """Best discord per candidate length, plus the overall winner."""

    lengths: tuple[int, ...]
    locations: tuple[int, ...]  # discord start per length
    distances: tuple[float, ...]  # length-normalized discord distance

    @property
    def best(self) -> tuple[int, int, float]:
        """``(length, location, normalized_distance)`` of the winner."""
        i = int(np.argmax(self.distances))
        return self.lengths[i], self.locations[i], self.distances[i]


def candidate_lengths(min_w: int, max_w: int, num: int) -> tuple[int, ...]:
    """Geometrically spaced candidate window lengths."""
    if min_w < 3:
        raise ValueError(f"min_w must be >= 3, got {min_w}")
    if max_w < min_w:
        raise ValueError(f"max_w ({max_w}) < min_w ({min_w})")
    raw = np.geomspace(min_w, max_w, num=num)
    return tuple(sorted(set(int(round(length)) for length in raw)))


def merlin(
    values: np.ndarray,
    min_w: int,
    max_w: int,
    num_lengths: int = 8,
    early_abandon: bool = False,
    max_memory_bytes: int | None = None,
    jobs: int | None = None,
) -> MerlinResult:
    """Discord of every candidate length in ``[min_w, max_w]``.

    ``max_memory_bytes`` caps each length's sweep workspace (the mpx
    kernel column-chunks its block buffers to fit), so the whole
    candidate sweep — early-abandoned or not — runs inside one bounded
    footprint on top of the shared O(n) :class:`SlidingStats`.
    ``jobs`` parallelizes each per-length sweep across worker processes
    (bit-identical results, budget split per worker — see
    :func:`~repro.detectors.matrix_profile.matrix_profile`).
    """
    values = np.asarray(values, dtype=float)
    stats = SlidingStats(values)
    lengths: list[int] = []
    locations: list[int] = []
    distances: list[float] = []
    best_norm = -np.inf
    for w in candidate_lengths(min_w, max_w, num_lengths):
        if values.size < 2 * w:
            continue
        floor = best_norm if early_abandon and lengths else None
        found = discord_search(
            values,
            w,
            stats=stats,
            normalized_floor=floor,
            max_memory_bytes=max_memory_bytes,
            jobs=jobs,
        )
        if found is None:
            continue  # abandoned: cannot beat the best discord so far
        location, distance = found
        normalized = distance / np.sqrt(w)
        lengths.append(w)
        locations.append(location)
        distances.append(float(normalized))
        if normalized > best_norm:
            best_norm = normalized
    if not lengths:
        raise ValueError("series too short for every candidate length")
    return MerlinResult(
        lengths=tuple(lengths),
        locations=tuple(locations),
        distances=tuple(distances),
    )


class MerlinDetector(Detector):
    """Per-point score = max over lengths of the normalized profile.

    ``max_memory_bytes`` bounds every per-length kernel sweep; ``None``
    defers to the process-wide default (``repro run --max-memory`` /
    ``REPRO_MAX_MEMORY``).  ``jobs`` shards each sweep across worker
    processes (``None`` defers to ``--kernel-jobs`` /
    ``REPRO_KERNEL_JOBS``); scores are bit-identical either way.
    """

    def __init__(
        self,
        min_w: int = 50,
        max_w: int = 200,
        num_lengths: int = 5,
        max_memory_bytes: int | None = None,
        jobs: int | None = None,
    ) -> None:
        self.min_w = min_w
        self.max_w = max_w
        self.num_lengths = num_lengths
        self.max_memory_bytes = max_memory_bytes
        self.jobs = jobs

    @property
    def name(self) -> str:
        return f"MERLIN(w={self.min_w}..{self.max_w})"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        stats = SlidingStats(values)
        combined = np.full(values.size, -np.inf)
        for w in candidate_lengths(self.min_w, self.max_w, self.num_lengths):
            if values.size < 2 * w:
                continue
            result = matrix_profile(
                values,
                w,
                stats=stats,
                with_indices=False,
                max_memory_bytes=self.max_memory_bytes,
                jobs=self.jobs,
            )
            points = subsequence_to_point_scores(
                result.profile / np.sqrt(w), w, values.size
            )
            combined = np.maximum(combined, points)
        return combined
