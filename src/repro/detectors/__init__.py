"""Anomaly detectors: trivial baselines through discords and forecasters."""

from .base import Detector
from .baselines import (
    ConstantRunDetector,
    DiffDetector,
    MovingStdDetector,
    MovingZScoreDetector,
    NaiveLastPointDetector,
    OneLinerDetector,
    RandomScoreDetector,
)
from .knn import KnnDistanceDetector
from .matrix_profile import (
    ApproxReport,
    MatrixProfileDetector,
    MatrixProfileResult,
    default_kernel_jobs,
    default_memory_budget,
    discord_search,
    discords,
    matrix_profile,
    moving_mean_std,
    parse_memory_size,
    set_default_kernel_jobs,
    set_default_memory_budget,
    sliding_dot_products,
    subsequence_to_point_scores,
)
from .merlin import MerlinDetector, MerlinResult, merlin
from .parallel import plan_shards
from .reference import naive_profile, stomp_profile
from .sliding import SlidingStats, chunk_spans, sliding_max, sliding_min
from .registry import (
    DETECTORS,
    DetectorSpec,
    available_detectors,
    make_detector,
    parse_detectors,
)
from .stats import CusumDetector, EwmaDetector
from .telemanom import (
    ARForecaster,
    TelemanomDetector,
    dynamic_threshold,
    prune_anomalies,
)

__all__ = [
    "Detector",
    "DiffDetector",
    "MovingZScoreDetector",
    "MovingStdDetector",
    "ConstantRunDetector",
    "NaiveLastPointDetector",
    "RandomScoreDetector",
    "OneLinerDetector",
    "CusumDetector",
    "EwmaDetector",
    "matrix_profile",
    "MatrixProfileResult",
    "MatrixProfileDetector",
    "ApproxReport",
    "plan_shards",
    "discord_search",
    "discords",
    "moving_mean_std",
    "sliding_dot_products",
    "subsequence_to_point_scores",
    "SlidingStats",
    "chunk_spans",
    "sliding_max",
    "sliding_min",
    "parse_memory_size",
    "set_default_memory_budget",
    "default_memory_budget",
    "set_default_kernel_jobs",
    "default_kernel_jobs",
    "naive_profile",
    "stomp_profile",
    "merlin",
    "MerlinResult",
    "MerlinDetector",
    "ARForecaster",
    "TelemanomDetector",
    "dynamic_threshold",
    "prune_anomalies",
    "KnnDistanceDetector",
    "DETECTORS",
    "DetectorSpec",
    "make_detector",
    "available_detectors",
    "parse_detectors",
]
