"""Name → detector factory registry.

Benches and examples build detector line-ups by name so a new detector
only has to register here to show up everywhere.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import Detector
from .baselines import (
    ConstantRunDetector,
    DiffDetector,
    MovingStdDetector,
    MovingZScoreDetector,
    NaiveLastPointDetector,
    RandomScoreDetector,
)
from .knn import KnnDistanceDetector
from .matrix_profile import MatrixProfileDetector
from .merlin import MerlinDetector
from .stats import CusumDetector, EwmaDetector
from .telemanom import TelemanomDetector

__all__ = ["DETECTORS", "make_detector", "available_detectors"]

DETECTORS: dict[str, Callable[..., Detector]] = {
    "diff": DiffDetector,
    "moving_zscore": MovingZScoreDetector,
    "moving_std": MovingStdDetector,
    "constant_run": ConstantRunDetector,
    "last_point": NaiveLastPointDetector,
    "random": RandomScoreDetector,
    "cusum": CusumDetector,
    "ewma": EwmaDetector,
    "matrix_profile": MatrixProfileDetector,
    "merlin": MerlinDetector,
    "telemanom": TelemanomDetector,
    "knn": KnnDistanceDetector,
}


def make_detector(name: str, **kwargs) -> Detector:
    """Instantiate a registered detector by name."""
    try:
        factory = DETECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r}; available: {sorted(DETECTORS)}"
        ) from None
    return factory(**kwargs)


def available_detectors() -> list[str]:
    """Registered detector names, sorted."""
    return sorted(DETECTORS)
