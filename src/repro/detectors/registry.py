"""Name → detector factory registry, plus hashable detector specs.

Benches and examples build detector line-ups by name so a new detector
only has to register here to show up everywhere.  :class:`DetectorSpec`
is the registry's value-object form — a hashable ``(name, params)`` pair
that the evaluation engine can put in grids, pickle to worker processes,
fingerprint for the result cache and round-trip through run manifests.
"""

from __future__ import annotations

import ast
import hashlib
import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from .base import Detector
from .baselines import (
    ConstantRunDetector,
    DiffDetector,
    MovingStdDetector,
    MovingZScoreDetector,
    NaiveLastPointDetector,
    RandomScoreDetector,
)
from .knn import KnnDistanceDetector
from .matrix_profile import MatrixProfileDetector
from .merlin import MerlinDetector
from .stats import CusumDetector, EwmaDetector
from .telemanom import TelemanomDetector

__all__ = [
    "DETECTORS",
    "DetectorSpec",
    "make_detector",
    "available_detectors",
    "parse_detectors",
]

DETECTORS: dict[str, Callable[..., Detector]] = {
    "diff": DiffDetector,
    "moving_zscore": MovingZScoreDetector,
    "moving_std": MovingStdDetector,
    "constant_run": ConstantRunDetector,
    "last_point": NaiveLastPointDetector,
    "random": RandomScoreDetector,
    "cusum": CusumDetector,
    "ewma": EwmaDetector,
    "matrix_profile": MatrixProfileDetector,
    "merlin": MerlinDetector,
    "telemanom": TelemanomDetector,
    "knn": KnnDistanceDetector,
}


def make_detector(name: "str | DetectorSpec", **kwargs) -> Detector:
    """Instantiate a registered detector by name or spec."""
    if isinstance(name, DetectorSpec):
        kwargs = {**dict(name.params), **kwargs}
        name = name.name
    try:
        factory = DETECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r}; available: {sorted(DETECTORS)}"
        ) from None
    return factory(**kwargs)


def available_detectors() -> list[str]:
    """Registered detector names, sorted."""
    return sorted(DETECTORS)


@dataclass(frozen=True)
class DetectorSpec:
    """A hashable ``(name, params)`` pair naming a registered detector.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    specs with the same keyword arguments compare and hash equal whatever
    order they were given in.  Values must be JSON-representable (they
    travel through manifests and cache keys).
    """

    name: str
    params: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        frozen = tuple(
            (key, _freeze(value)) for key, value in sorted(self.params)
        )
        for key, value in frozen:
            try:
                hash(value)
            except TypeError:
                raise ValueError(
                    f"detector param {key!r} has unhashable value "
                    f"{value!r}; use literals (numbers, strings, bools, "
                    f"lists/tuples of them)"
                ) from None
        object.__setattr__(self, "params", frozen)

    @classmethod
    def create(cls, name: str, **params) -> "DetectorSpec":
        """Build a spec from keyword arguments."""
        return cls(name=name, params=tuple(sorted(params.items())))

    @classmethod
    def parse(cls, text: str) -> "DetectorSpec":
        """Parse ``"name"`` or ``"name(key=value, ...)"``.

        Values must be Python literals (``w=100``, ``alpha=0.1``,
        ``znorm=True``, ``tag='a'``); anything else is rejected here
        rather than smuggled through as a string that blows up halfway
        into a run.
        """
        text = text.strip()
        if not text.endswith(")"):
            return cls(name=text)
        name, sep, arg_text = text[:-1].partition("(")
        if not sep:
            raise ValueError(
                f"bad detector spec {text!r}: unbalanced parentheses"
            )
        params = {}
        for item in _split_top_level(arg_text):
            key, sep, raw = item.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"bad detector spec {text!r}: expected key=value, got {item!r}"
                )
            try:
                value = ast.literal_eval(raw.strip())
            except (SyntaxError, ValueError):
                raise ValueError(
                    f"bad detector spec {text!r}: value for "
                    f"{key.strip()!r} is not a Python literal: {raw.strip()!r}"
                ) from None
            params[key.strip()] = value
        return cls.create(name.strip(), **params)

    @classmethod
    def from_json(cls, payload: Mapping) -> "DetectorSpec":
        """Inverse of :meth:`to_json`."""
        return cls.create(payload["name"], **payload.get("params", {}))

    def to_json(self) -> dict:
        """JSON-ready ``{"name": ..., "params": {...}}`` mapping."""
        return {"name": self.name, "params": dict(self.params)}

    @property
    def label(self) -> str:
        """Stable display key: ``name`` or ``name(k=v,...)``.

        Injective over specs (``repr`` keeps string quoting, so
        ``w=100`` and ``w='100'`` stay distinct) and parseable back via
        :meth:`parse`.
        """
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}({inner})"

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON form."""
        blob = json.dumps(self.to_json(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def build(self) -> Detector:
        """Instantiate the detector this spec names."""
        return make_detector(self.name, **dict(self.params))


def _freeze(value):
    """Recursively turn lists into tuples so params stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not nested inside brackets or quotes."""
    parts, depth, quote, current = [], 0, "", []
    for char in text:
        if quote:
            if char == quote:
                quote = ""
        elif char in "\"'":
            quote = char
        elif char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        elif char == "," and depth == 0:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_detectors(text: str) -> list[DetectorSpec]:
    """Parse a comma-separated detector line-up into specs.

    Commas inside parameter lists do not split:
    ``"diff,matrix_profile(w=100,exclusion=50)"`` yields two specs.
    """
    return [DetectorSpec.parse(item) for item in _split_top_level(text)]
