"""Sharded execution of the mpx diagonal sweep — bit-identical merge.

The diagonal sweep in :mod:`repro.detectors.matrix_profile` is
embarrassingly parallel over diagonal blocks: a block's contribution
depends only on the O(n) recurrence vectors (``dfp``/``dgp``/``invp``),
the anchor covariances ``c0`` and the block's own buffers — never on
another block's running state.  This module partitions the diagonal
range into contiguous, *block-aligned* shards, sweeps each shard with
the existing chunk-carry kernel (in a ``ProcessPoolExecutor`` or
in-process), and merges the per-shard running maxima back together.

Three invariants make the merged result **bit-identical** to the
single-sweep kernel for every ``jobs`` value:

* **Block alignment.**  Shard boundaries fall on multiples of the
  kernel block size past the exclusion zone, so a shard's internal
  block starts coincide exactly with the serial sweep's.  Every float
  op inside a block is then the same op the serial sweep performs —
  chunk widths may differ per worker, but the chunk-carry contract
  already makes results chunk-width independent.
* **Jobs-independent planning.**  :func:`plan_shards` derives the
  partition from the problem shape alone (never from ``jobs``), so the
  shard list — and therefore the merge order, the spans each worker
  exports and the final bits — is identical whether one process or
  eight consume it.
* **First-occurrence merge.**  Shards are merged in ascending diagonal
  order with a strict ``>``, mirroring the serial sweep's cross-block
  tie rule (earliest diagonal wins; within a block the kernel's own
  row-before-column ordering is preserved because the shard *is* the
  kernel).  A tie between two shards therefore resolves to the same
  neighbour index the serial sweep reports.

Workers receive the raw series once per process (pool initializer) and
rebuild :class:`~repro.detectors.sliding.SlidingStats` locally — the
stats pipeline is deterministic, so recomputed means/inverse-stds are
bit-equal to the parent's and nothing O(n²) crosses the pipe.  Each
worker traces its shard under an ``mpx.shard`` span when the parent is
tracing; exports travel back by value for :meth:`Tracer.adopt`, exactly
like evaluation-engine cells.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

__all__ = ["plan_shards", "sharded_sweep", "ShardOutcome"]

# hard ceiling on shards per sweep: each shard re-derives the O(n·w)
# anchor covariances, so the count must stay far below the point where
# that rivals the O(m²/shards) sweep work itself
_MAX_SHARDS = 32
# a shard smaller than this many diagonal blocks is not worth its
# anchor recomputation; small inputs collapse to fewer (or one) shards
_MIN_SHARD_BLOCKS = 4


def plan_shards(
    m: int,
    exclusion: int,
    *,
    diag_stop: "int | None" = None,
    block: "int | None" = None,
) -> "list[tuple[int, int]]":
    """Partition diagonals ``[exclusion, diag_stop)`` into aligned shards.

    Returns contiguous ``(d_lo, d_hi)`` ranges whose interior boundaries
    are block-aligned (``exclusion + k * block``) and whose *pair*
    counts — diagonal ``d`` holds ``m - d`` pairs, so leading diagonals
    are the heaviest — are as balanced as contiguity allows.  The plan
    depends only on the problem shape, never on the worker count: the
    same input always produces the same shards, which is what makes the
    sharded sweep's results and traces independent of ``jobs``.
    """
    if block is None:
        from .matrix_profile import _DIAG_BLOCK

        block = _DIAG_BLOCK
    stop = m if diag_stop is None else min(int(diag_stop), m)
    if exclusion >= stop:
        return []
    starts = np.arange(exclusion, stop, block, dtype=np.int64)
    count = max(1, min(_MAX_SHARDS, starts.size // _MIN_SHARD_BLOCKS))
    if count == 1:
        return [(int(exclusion), int(stop))]
    ends = np.minimum(starts + block, stop)
    pairs = (ends - starts) * m - (ends * (ends - 1) - starts * (starts - 1)) // 2
    cum = np.cumsum(pairs)
    targets = np.arange(1, count) * (int(cum[-1]) // count)
    cuts = np.unique(
        np.clip(np.searchsorted(cum, targets, side="left") + 1, 1, starts.size - 1)
    )
    bounds = [int(exclusion)] + [int(starts[c]) for c in cuts] + [int(stop)]
    return list(zip(bounds[:-1], bounds[1:]))


class ShardOutcome:
    """What one sweep over all shards produced, pre-merge bookkeeping.

    ``best``/``bestj`` are the merged running maxima (``bestj`` is
    ``None`` without index tracking), ``workspace_bytes`` the *largest*
    single-shard scratch footprint — the per-worker number a process
    budget of ``workspace_bytes × jobs`` bounds.  ``abandoned`` is True
    when at least one shard's early-abandon check fired; the merged
    arrays are still returned so the caller can apply the kernel's
    final-state abandon semantics itself.  ``exports`` holds each
    shard's ``(trace_records, registry_state)`` in shard order (``None``
    entries when untraced) for :meth:`Tracer.adopt`.
    """

    __slots__ = ("best", "bestj", "workspace_bytes", "abandoned", "exports", "shards")

    def __init__(self, best, bestj, workspace_bytes, abandoned, exports, shards):
        self.best = best
        self.bestj = bestj
        self.workspace_bytes = workspace_bytes
        self.abandoned = abandoned
        self.exports = exports
        self.shards = shards


def _shard_chunk(
    m: int,
    d_lo: int,
    worker_budget: "int | None",
    chunk_width: "int | None",
    need_indices: bool,
) -> "int | None":
    """Column-chunk width for one shard's sweep.

    An explicit ``chunk_width`` wins (every shard tiles alike);
    otherwise the *per-worker* budget derives the widest fitting chunk
    for this shard's geometry.  Leading shards have the longest
    diagonals and thus the narrowest chunks; results do not depend on
    the width either way.
    """
    from .matrix_profile import _chunk_for_budget

    if chunk_width is not None:
        return int(chunk_width)
    if worker_budget is None:
        return None
    return _chunk_for_budget(m, d_lo, int(worker_budget), need_indices=need_indices)


class _ShardContext:
    """Everything a worker needs to sweep any shard of one problem."""

    __slots__ = (
        "x",
        "w",
        "mean",
        "inv",
        "m",
        "need_indices",
        "chunk_width",
        "worker_budget",
        "abandon",
        "traced",
    )

    def __init__(
        self,
        values: np.ndarray,
        w: int,
        need_indices: bool,
        chunk_width: "int | None",
        worker_budget: "int | None",
        abandon: "float | None",
        traced: bool,
    ) -> None:
        from .sliding import SlidingStats

        stats = SlidingStats(np.asarray(values, dtype=float))
        mean, inv, _constant = stats.kernel_stats(w)
        self.x = stats.shifted
        self.w = w
        self.mean = mean
        self.inv = inv
        self.m = stats.n - w + 1
        self.need_indices = need_indices
        self.chunk_width = chunk_width
        self.worker_budget = worker_budget
        self.abandon = abandon
        self.traced = traced


def _sweep_one(context: _ShardContext, index: int, d_lo: int, d_hi: int):
    """Sweep one shard; returns ``(swept, trace_records, registry_state)``.

    ``swept`` is the kernel's ``(best, bestj, workspace_bytes)`` tuple,
    or ``None`` when the shard's own early-abandon check fired.  The
    shard is traced inside its own session so the records travel by
    value; the span tree (``mpx.shard`` wrapping the kernel's
    ``mpx.block``/``mpx.chunk`` spans) is identical in-process and in a
    pool worker.
    """
    from .matrix_profile import _diagonal_sweep
    from ..obs import tracing_session

    chunk = _shard_chunk(
        context.m, d_lo, context.worker_budget, context.chunk_width,
        context.need_indices,
    )
    if not context.traced:
        swept = _diagonal_sweep(
            context.x,
            context.w,
            d_lo,
            context.mean,
            context.inv,
            need_indices=context.need_indices,
            abandon=context.abandon,
            chunk=chunk,
            diag_limit=d_hi - d_lo,
        )
        return swept, None, None
    with tracing_session(enabled=True) as (tracer, registry):
        with tracer.span(
            "mpx.shard", index=index, d_lo=d_lo, d_hi=d_hi, chunk=chunk
        ) as span:
            swept = _diagonal_sweep(
                context.x,
                context.w,
                d_lo,
                context.mean,
                context.inv,
                need_indices=context.need_indices,
                abandon=context.abandon,
                chunk=chunk,
                diag_limit=d_hi - d_lo,
                tracer=tracer,
            )
            if swept is None:
                span.set(abandoned=True)
        return swept, tracer.export(), registry.export_state()


# -- process-pool plumbing --------------------------------------------

_POOL_CONTEXT: "_ShardContext | None" = None


def _pool_init(
    values: np.ndarray,
    w: int,
    need_indices: bool,
    chunk_width: "int | None",
    worker_budget: "int | None",
    abandon: "float | None",
    traced: bool,
) -> None:
    """Pool initializer: build the shard context once per worker.

    The series crosses the pipe once per *process* (initargs), not once
    per shard, and the O(n) stats are recomputed locally — bit-equal to
    the parent's because the stats pipeline is deterministic.
    """
    global _POOL_CONTEXT
    _POOL_CONTEXT = _ShardContext(
        values, w, need_indices, chunk_width, worker_budget, abandon, traced
    )


def _pool_sweep(task: "tuple[int, int, int]"):
    index, d_lo, d_hi = task
    return _sweep_one(_POOL_CONTEXT, index, d_lo, d_hi)


def _merge(best, bestj, shard_best, shard_bestj) -> None:
    """Fold one shard into the running result, earliest diagonal first.

    Strict ``>`` keeps the incumbent on ties; because shards arrive in
    ascending diagonal order, the surviving neighbour index is the one
    the serial sweep's first-occurrence rule picks.
    """
    if bestj is None:
        np.maximum(best, shard_best, out=best)
        return
    upd = shard_best > best
    best[upd] = shard_best[upd]
    bestj[upd] = shard_bestj[upd]


def sharded_sweep(
    values: np.ndarray,
    w: int,
    exclusion: int,
    *,
    need_indices: bool,
    jobs: int,
    chunk_width: "int | None" = None,
    worker_budget: "int | None" = None,
    abandon: "float | None" = None,
    diag_stop: "int | None" = None,
    traced: bool = False,
) -> ShardOutcome:
    """Sweep every shard of the self-join and merge, in shard order.

    ``jobs`` is the worker-process count; ``jobs=1`` runs the identical
    shard plan in-process (no pool), which is what makes single- and
    multi-process traces comparable span-for-span.  ``worker_budget``
    is the *per-worker* scratch cap — the caller divides its process
    budget by ``jobs`` — and ``diag_stop`` restricts the sweep to
    separations below it (the anytime mode's leading-diagonal window).

    The merged arrays are bit-identical to one serial
    :func:`~repro.detectors.matrix_profile._diagonal_sweep` over the
    same diagonal range, for every ``jobs``; see the module docstring
    for why.
    """
    values = np.asarray(values, dtype=float)
    m = values.size - w + 1
    shards = plan_shards(m, exclusion, diag_stop=diag_stop)
    best = np.full(m, -np.inf)
    bestj = np.zeros(m, dtype=np.int64) if need_indices else None
    if not shards:
        return ShardOutcome(best, bestj, 0, False, [], shards)

    tasks = [(i, d_lo, d_hi) for i, (d_lo, d_hi) in enumerate(shards)]
    if jobs > 1 and len(shards) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(shards)),
            initializer=_pool_init,
            initargs=(
                values, w, need_indices, chunk_width, worker_budget,
                abandon, traced,
            ),
        ) as pool:
            outcomes = list(pool.map(_pool_sweep, tasks))
    else:
        context = _ShardContext(
            values, w, need_indices, chunk_width, worker_budget, abandon, traced
        )
        outcomes = [_sweep_one(context, *task) for task in tasks]

    workspace = 0
    abandoned = False
    exports = []
    for swept, records, state in outcomes:
        exports.append((records, state))
        if swept is None:
            abandoned = True
            continue
        shard_best, shard_bestj, shard_bytes = swept
        workspace = max(workspace, shard_bytes)
        _merge(best, bestj, shard_best, shard_bestj)
    return ShardOutcome(best, bestj, workspace, abandoned, exports, shards)
