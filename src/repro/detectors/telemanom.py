"""Telemanom-style detector: forecaster + nonparametric dynamic thresholding.

Telemanom (Hundman et al., KDD 2018 — the paper's reference [2] and the
method in Fig 13) pairs an LSTM one-step forecaster with a *nonparametric
dynamic thresholding* rule over smoothed prediction errors.

Substitution (documented in DESIGN.md): this environment has no deep
learning stack, so the forecaster is an autoregressive ridge regression.
What the paper's Fig 13 exercises — prediction errors degrade globally
when noise is added, misleading the threshold/argmax — is a property of
*forecast-error* detectors generally, which the AR model reproduces.  The
thresholding, error smoothing and pruning steps follow Hundman et al.
§IV faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import Labels
from .base import Detector

__all__ = [
    "ARForecaster",
    "dynamic_threshold",
    "prune_anomalies",
    "TelemanomDetector",
]


class ARForecaster:
    """One-step-ahead autoregressive forecaster fit by ridge regression."""

    def __init__(self, lags: int = 50, ridge: float = 1.0) -> None:
        if lags < 1:
            raise ValueError(f"lags must be >= 1, got {lags}")
        self.lags = lags
        self.ridge = ridge
        self.weights: np.ndarray | None = None
        self.intercept: float = 0.0

    def fit(self, values: np.ndarray) -> "ARForecaster":
        values = np.asarray(values, dtype=float)
        if values.size < self.lags + 2:
            raise ValueError(
                f"need at least lags+2={self.lags + 2} points, got {values.size}"
            )
        p = self.lags
        windows = np.lib.stride_tricks.sliding_window_view(values, p + 1)
        design = windows[:, :p]
        target = windows[:, p]
        mean = design.mean(axis=0)
        centered = design - mean
        target_mean = target.mean()
        gram = centered.T @ centered + self.ridge * np.eye(p)
        self.weights = np.linalg.solve(gram, centered.T @ (target - target_mean))
        self.intercept = float(target_mean - mean @ self.weights)
        return self

    def predict(self, values: np.ndarray) -> np.ndarray:
        """Predictions for points ``lags .. n-1`` (length ``n - lags``)."""
        if self.weights is None:
            raise RuntimeError("forecaster is not fitted")
        values = np.asarray(values, dtype=float)
        if values.size <= self.lags:
            return np.empty(0)
        windows = np.lib.stride_tricks.sliding_window_view(values, self.lags)
        return windows[:-1] @ self.weights + self.intercept

    def errors(self, values: np.ndarray) -> np.ndarray:
        """|prediction error| per point; unpredictable prefix = 0."""
        values = np.asarray(values, dtype=float)
        out = np.zeros(values.size)
        predictions = self.predict(values)
        out[self.lags :] = np.abs(values[self.lags :] - predictions)
        return out


def exponential_smooth(values: np.ndarray, alpha: float) -> np.ndarray:
    """Causal EWMA, the error smoothing of Hundman et al. eq. (2)."""
    values = np.asarray(values, dtype=float)
    out = np.empty(values.size)
    level = values[0] if values.size else 0.0
    for i, value in enumerate(values):
        level = alpha * value + (1.0 - alpha) * level
        out[i] = level
    return out


def dynamic_threshold(
    errors: np.ndarray, z_range: np.ndarray | None = None
) -> float:
    """Nonparametric dynamic threshold (Hundman et al. §IV.A).

    Chooses ``epsilon = mu + z*sigma`` maximizing

        (delta_mu/mu + delta_sigma/sigma) / (|E_a| + |seq|^2)

    where ``delta_mu``/``delta_sigma`` are the drop in mean/std after
    removing errors above epsilon, ``E_a`` the points above it, and
    ``seq`` the contiguous runs above it.
    """
    errors = np.asarray(errors, dtype=float)
    if z_range is None:
        z_range = np.arange(2.0, 12.0, 0.5)
    mu = float(errors.mean())
    sigma = float(errors.std())
    if sigma == 0.0 or errors.size == 0:
        return mu
    best_epsilon = mu + float(z_range[0]) * sigma
    best_objective = -np.inf
    for z in z_range:
        epsilon = mu + float(z) * sigma
        below = errors[errors <= epsilon]
        above = errors > epsilon
        count_above = int(above.sum())
        if count_above == 0 or below.size == 0:
            continue
        delta_mu = mu - float(below.mean())
        delta_sigma = sigma - float(below.std())
        runs = Labels.from_mask(above).num_regions
        objective = (delta_mu / mu + delta_sigma / sigma) / (
            count_above + runs**2
        )
        if objective > best_objective:
            best_objective = objective
            best_epsilon = epsilon
    return float(best_epsilon)


def prune_anomalies(
    errors: np.ndarray, flagged: Labels, minimum_drop: float = 0.13
) -> Labels:
    """Prune step (Hundman et al. §IV.B).

    Sort flagged regions by their maximum error, append the highest
    non-flagged error, and walk down the sequence: a region survives only
    if the relative drop to the next value exceeds ``minimum_drop``
    before any smaller drop occurs.
    """
    errors = np.asarray(errors, dtype=float)
    regions = list(flagged.regions)
    if not regions:
        return flagged
    maxima = np.array(
        [errors[region.start : region.end].max() for region in regions]
    )
    outside = np.ones(errors.size, dtype=bool)
    for region in regions:
        outside[region.start : region.end] = False
    floor = float(errors[outside].max()) if outside.any() else 0.0

    order = np.argsort(maxima)[::-1]
    sorted_maxima = np.concatenate([maxima[order], [floor]])
    drops = (sorted_maxima[:-1] - sorted_maxima[1:]) / np.maximum(
        sorted_maxima[:-1], 1e-12
    )
    keep_until = -1
    for rank, drop in enumerate(drops):
        if drop >= minimum_drop:
            keep_until = rank
    kept = {int(order[rank]) for rank in range(keep_until + 1)}
    surviving = tuple(
        region for index, region in enumerate(regions) if index in kept
    )
    return Labels(n=flagged.n, regions=surviving)


@dataclass
class TelemanomDetection:
    """Full detection output: scores, threshold and flagged regions."""

    scores: np.ndarray
    epsilon: float
    flagged: Labels


class TelemanomDetector(Detector):
    """AR forecaster + smoothed errors + dynamic threshold."""

    def __init__(
        self,
        lags: int = 50,
        ridge: float = 1.0,
        smoothing_alpha: float = 0.05,
        minimum_drop: float = 0.13,
    ) -> None:
        self.lags = lags
        self.ridge = ridge
        self.smoothing_alpha = smoothing_alpha
        self.minimum_drop = minimum_drop
        self._forecaster: ARForecaster | None = None

    @property
    def name(self) -> str:
        return f"Telemanom(lags={self.lags})"

    def fit(self, train: np.ndarray) -> "TelemanomDetector":
        train = np.asarray(train, dtype=float)
        if train.size >= self.lags + 2:
            self._forecaster = ARForecaster(self.lags, self.ridge).fit(train)
        return self

    def _ensure_forecaster(self, values: np.ndarray) -> ARForecaster:
        if self._forecaster is not None:
            return self._forecaster
        # untrained fallback: fit on the leading third, as the original
        # does when given a single undivided channel
        head = values[: max(self.lags + 2, values.size // 3)]
        self._forecaster = ARForecaster(self.lags, self.ridge).fit(head)
        return self._forecaster

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        forecaster = self._ensure_forecaster(values)
        return exponential_smooth(forecaster.errors(values), self.smoothing_alpha)

    def detect(self, values: np.ndarray) -> TelemanomDetection:
        """Scores plus thresholded, pruned anomaly regions."""
        scores = self.score(values)
        epsilon = dynamic_threshold(scores)
        flagged = Labels.from_mask(scores > epsilon)
        flagged = prune_anomalies(scores, flagged, self.minimum_drop)
        return TelemanomDetection(scores=scores, epsilon=epsilon, flagged=flagged)
