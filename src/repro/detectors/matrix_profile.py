"""Matrix profile (STOMP) and time series discords.

The paper repeatedly benchmarks against "time series discords" ([19],
[21]; Fig 8 and Fig 13) — the subsequence whose z-normalized Euclidean
distance to its nearest non-overlapping neighbour is largest.  The matrix
profile gives every subsequence's nearest-neighbour distance; its argmax
is the discord.

Implementation: MASS (FFT sliding dot products) for the first row, then
O(n) STOMP updates per row — the standard exact O(n²) self-join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import Detector

__all__ = [
    "sliding_dot_products",
    "moving_mean_std",
    "matrix_profile",
    "MatrixProfileResult",
    "discords",
    "subsequence_to_point_scores",
    "MatrixProfileDetector",
]

_EPS = 1e-12


def sliding_dot_products(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of ``query`` with every window of ``series`` (FFT)."""
    query = np.asarray(query, dtype=float)
    series = np.asarray(series, dtype=float)
    m, n = query.size, series.size
    if m > n:
        raise ValueError(f"query ({m}) longer than series ({n})")
    size = 1 << int(np.ceil(np.log2(n + m)))
    fft_series = np.fft.rfft(series, size)
    fft_query = np.fft.rfft(query[::-1], size)
    product = np.fft.irfft(fft_series * fft_query, size)
    return product[m - 1 : n]


def moving_mean_std(values: np.ndarray, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean and population std of every length-``w`` window (O(n))."""
    values = np.asarray(values, dtype=float)
    shifted = values - values.mean()  # cancellation guard
    prefix = np.concatenate(([0.0], np.cumsum(shifted)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(shifted * shifted)))
    sums = prefix[w:] - prefix[:-w]
    sums_sq = prefix_sq[w:] - prefix_sq[:-w]
    mean_shifted = sums / w
    variance = np.maximum(sums_sq / w - mean_shifted * mean_shifted, 0.0)
    return mean_shifted + values.mean(), np.sqrt(variance)


@dataclass
class MatrixProfileResult:
    """Self-join matrix profile for window length ``w``."""

    w: int
    profile: np.ndarray  # nearest-neighbour distance per subsequence
    indices: np.ndarray  # nearest-neighbour location per subsequence

    @property
    def discord_index(self) -> int:
        """Start index of the top discord subsequence."""
        return int(np.argmax(np.where(np.isfinite(self.profile), self.profile, -np.inf)))


def matrix_profile(
    values: np.ndarray, w: int, exclusion: int | None = None
) -> MatrixProfileResult:
    """Exact z-normalized self-join matrix profile via STOMP.

    ``exclusion`` is the trivial-match zone half-width; the default ``w``
    enforces the classic discord requirement of *non-overlapping*
    nearest neighbours.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if w < 3:
        raise ValueError(f"window must be >= 3, got {w}")
    if n < 2 * w:
        raise ValueError(
            f"series of length {n} too short for window {w} "
            "(need at least 2*w points)"
        )
    if exclusion is None:
        exclusion = w
    num_subs = n - w + 1
    mean, std = moving_mean_std(values, w)
    # exact constant-window detection: cumsum-based std has ~sqrt(eps)
    # noise, so compare window extrema instead
    windows = sliding_window_view(values, w)
    constant = windows.max(axis=1) == windows.min(axis=1)
    std = np.where(constant, 0.0, std)

    profile = np.full(num_subs, np.inf)
    indices = np.zeros(num_subs, dtype=int)
    first_qt = sliding_dot_products(values[:w], values)
    qt = first_qt.copy()
    offsets = np.arange(num_subs)

    for i in range(num_subs):
        if i > 0:
            qt[1:] = (
                qt[:-1]
                - values[: num_subs - 1] * values[i - 1]
                + values[w : w + num_subs - 1] * values[i + w - 1]
            )
            qt[0] = first_qt[i]
        if constant[i]:
            # distance to non-constant windows is sqrt(w), to constant 0
            dist = np.where(constant, 0.0, np.sqrt(w))
        else:
            denominator = w * std[i] * std
            correlation = np.where(
                constant,
                0.0,
                (qt - w * mean[i] * mean) / np.where(constant, 1.0, denominator),
            )
            correlation = np.clip(correlation, -1.0, 1.0)
            dist = np.sqrt(2.0 * w * (1.0 - correlation))
            dist = np.where(constant, np.sqrt(w), dist)
        mask = np.abs(offsets - i) < exclusion
        dist = np.where(mask, np.inf, dist)
        j = int(np.argmin(dist))
        profile[i] = dist[j]
        indices[i] = j
    return MatrixProfileResult(w=w, profile=profile, indices=indices)


def discords(
    values: np.ndarray, w: int, top_k: int = 1, exclusion: int | None = None
) -> list[tuple[int, float]]:
    """Top-k discords as ``(start_index, distance)``, non-overlapping."""
    result = matrix_profile(values, w, exclusion)
    profile = np.where(np.isfinite(result.profile), result.profile, -np.inf).copy()
    found = []
    for _ in range(top_k):
        best = int(np.argmax(profile))
        if not np.isfinite(profile[best]) or profile[best] == -np.inf:
            break
        found.append((best, float(profile[best])))
        lo = max(0, best - w)
        profile[lo : best + w] = -np.inf
    return found


def subsequence_to_point_scores(
    profile: np.ndarray, w: int, n: int, fill: float = -np.inf
) -> np.ndarray:
    """Lift per-subsequence scores to per-point scores.

    A point inherits the maximum score over every subsequence covering
    it, so the whole discord window lights up.  Points covered by no
    finite-scored subsequence get ``fill``.
    """
    profile = np.asarray(profile, dtype=float)
    num_subs = profile.size
    if num_subs != n - w + 1:
        raise ValueError(
            f"profile length {num_subs} inconsistent with n={n}, w={w}"
        )
    padded = np.concatenate(
        [np.full(w - 1, fill), np.where(np.isfinite(profile), profile, fill), np.full(w - 1, fill)]
    )
    return sliding_window_view(padded, w).max(axis=1)


class MatrixProfileDetector(Detector):
    """Discord detector: per-point score from the matrix profile."""

    def __init__(self, w: int = 100, exclusion: int | None = None) -> None:
        self.w = w
        self.exclusion = exclusion

    @property
    def name(self) -> str:
        return f"MatrixProfile(w={self.w})"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        result = matrix_profile(values, self.w, self.exclusion)
        return subsequence_to_point_scores(result.profile, self.w, values.size)
