"""Matrix profile (mpx diagonal kernel) and time series discords.

The paper repeatedly benchmarks against "time series discords" ([19],
[21]; Fig 8 and Fig 13) — the subsequence whose z-normalized Euclidean
distance to its nearest non-overlapping neighbour is largest.  The matrix
profile gives every subsequence's nearest-neighbour distance; its argmax
is the discord.

Implementation: an mpx-style diagonal traversal of the self-join.  Per-
window mean, inverse std and the differential update terms are computed
once (O(n), via :mod:`repro.detectors.sliding`); each diagonal of the
distance matrix then updates Pearson correlations with a single cumsum —
one O(n − d) vector op per diagonal, self-join symmetry filling both
triangles at once — and correlations become distances only at the very
end.  Diagonals are processed in blocks so the per-diagonal numpy
dispatch overhead amortizes away; a skewed stride view aligns each
block's anti-diagonals so the symmetric (column-side) maximum is one
reduction instead of a copy.  Compared with the retained per-row STOMP
loop (:func:`repro.detectors.reference.stomp_profile`) this is ~3.3×
faster at n = 20,000 on one core (see the committed ``BENCH_<n>.json``
trajectory under ``benchmarks/perf/``); compared with the O(n²·w) brute
force it is ~50× faster, at identical profiles to ~1e-10.

Each block's column sweep is **chunked**: the reusable row buffer covers
a fixed-width column window instead of the whole series, and the raw
covariance cumsum is carried across chunk boundaries.  Because
``np.cumsum`` accumulates strictly sequentially, the carried sum enters
the next chunk as exactly the addition the unchunked cumsum would have
performed, so profiles are *bit-identical* for every chunk width.  The
working set drops from O(block · n) (~2 GB at n = 1e6) to
O(block · chunk); pass ``max_memory_bytes=`` to auto-derive the widest
chunk that fits a byte budget, tracked by exact allocation accounting
(see docs/kernel.md for the memory model and the chunk-carry
derivation).

Exactly-constant windows have no z-normalization; they are fixed up in a
vectorized post-pass with the same convention as before: distance 0
between two constant windows, ``sqrt(w)`` between a constant and a
non-constant window.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..obs import get_registry, get_tracer
from .base import Detector
from .sliding import SlidingStats, moving_mean_std, sliding_max

__all__ = [
    "sliding_dot_products",
    "moving_mean_std",
    "matrix_profile",
    "MatrixProfileResult",
    "ApproxReport",
    "discord_search",
    "discords",
    "subsequence_to_point_scores",
    "MatrixProfileDetector",
    "parse_memory_size",
    "set_default_memory_budget",
    "default_memory_budget",
    "set_default_kernel_jobs",
    "default_kernel_jobs",
]

# diagonals per kernel block, large enough to amortize numpy dispatch.
# The block buffers are column-chunked (see _diagonal_sweep): with an
# explicit chunk width (or a max_memory_bytes budget) the working set is
# O(block · chunk); with neither it degenerates to one full-width chunk,
# i.e. the historical O(block · n) footprint (~2 GB at n = 1e6).
_DIAG_BLOCK = 128
_ELEM = np.dtype(float).itemsize

# process-wide default for matrix_profile(..., max_memory_bytes=); the
# environment variable lets `repro score/run --max-memory` reach engine
# worker processes whatever their start method is.
_MEMORY_ENV = "REPRO_MAX_MEMORY"
_default_memory_budget: int | None = None

_MEMORY_UNITS = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_memory_size(text: "str | int") -> int:
    """``268435456``, ``"256M"``, ``"0.5G"``, ``"64MiB"`` → bytes."""
    if isinstance(text, (int, np.integer)):
        value = int(text)
    else:
        cleaned = str(text).strip().lower()
        if cleaned.endswith("ib"):
            cleaned = cleaned[:-2]
        elif cleaned.endswith("b"):
            cleaned = cleaned[:-1]
        factor = 1
        if cleaned and cleaned[-1] in _MEMORY_UNITS:
            factor = _MEMORY_UNITS[cleaned[-1]]
            cleaned = cleaned[:-1]
        try:
            value = int(float(cleaned) * factor)
        except ValueError:
            raise ValueError(
                f"unparseable memory size {text!r}; use plain bytes or a "
                f"K/M/G/T suffix (e.g. 256M, 1G)"
            ) from None
    if value <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return value


def set_default_memory_budget(max_memory_bytes: "int | None") -> None:
    """Set the process-wide default matrix-profile memory budget.

    ``None`` removes the cap.  The value is mirrored into the
    ``REPRO_MAX_MEMORY`` environment variable so evaluation-engine
    worker processes inherit it (fork *and* spawn start methods); this
    is how ``repro score/run --max-memory`` bounds every cell.
    """
    global _default_memory_budget
    if max_memory_bytes is not None:
        max_memory_bytes = int(max_memory_bytes)
        if max_memory_bytes <= 0:
            raise ValueError(
                f"max_memory_bytes must be positive, got {max_memory_bytes}"
            )
    _default_memory_budget = max_memory_bytes
    if max_memory_bytes is None:
        os.environ.pop(_MEMORY_ENV, None)
    else:
        os.environ[_MEMORY_ENV] = str(max_memory_bytes)


def default_memory_budget() -> "int | None":
    """The active default budget: explicit setting, else environment."""
    if _default_memory_budget is not None:
        return _default_memory_budget
    raw = os.environ.get(_MEMORY_ENV)
    if not raw:
        return None
    return parse_memory_size(raw)


# process-wide default for matrix_profile(..., jobs=); mirrored into the
# environment exactly like the memory budget so `repro ... --kernel-jobs`
# reaches engine worker processes, where the engine caps it back to 1 to
# keep one level of process parallelism (no nested pools).
_JOBS_ENV = "REPRO_KERNEL_JOBS"
_default_kernel_jobs: int | None = None


def set_default_kernel_jobs(jobs: "int | None") -> None:
    """Set the process-wide default for ``matrix_profile(..., jobs=)``.

    ``None`` removes the default (sweeps stay single-process and
    unsharded).  The value is mirrored into ``REPRO_KERNEL_JOBS`` so
    worker processes inherit it whatever their start method; the
    evaluation engine's pool initializer caps an inherited default to 1
    so engine parallelism and kernel parallelism never multiply.
    """
    global _default_kernel_jobs
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"kernel jobs must be >= 1, got {jobs}")
    _default_kernel_jobs = jobs
    if jobs is None:
        os.environ.pop(_JOBS_ENV, None)
    else:
        os.environ[_JOBS_ENV] = str(jobs)


def default_kernel_jobs() -> "int | None":
    """The active default kernel jobs: explicit setting, else environment."""
    if _default_kernel_jobs is not None:
        return _default_kernel_jobs
    raw = os.environ.get(_JOBS_ENV)
    if not raw:
        return None
    jobs = int(raw)
    if jobs < 1:
        raise ValueError(f"{_JOBS_ENV} must be >= 1, got {raw!r}")
    return jobs


def sliding_dot_products(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of ``query`` with every window of ``series`` (FFT)."""
    query = np.asarray(query, dtype=float)
    series = np.asarray(series, dtype=float)
    m, n = query.size, series.size
    if m > n:
        raise ValueError(f"query ({m}) longer than series ({n})")
    size = 1 << int(np.ceil(np.log2(n + m)))
    fft_series = np.fft.rfft(series, size)
    fft_query = np.fft.rfft(query[::-1], size)
    product = np.fft.irfft(fft_series * fft_query, size)
    return product[m - 1 : n]


@dataclass(frozen=True)
class ApproxReport:
    """Convergence/error report for an anytime (``approx=``) profile.

    The anytime mode sweeps only the *leading* diagonals — pair
    separations in ``[exclusion, exclusion + diagonals_swept)`` — so
    every reported value is a **pointwise upper bound** on the exact
    nearest-neighbour distance (a subset of candidate neighbours can
    only raise the minimum distance), and the bound is **monotone**:
    sweeping a larger fraction never loosens any entry, because a
    larger fraction covers a superset of diagonals and the shared
    prefix is computed bit-identically.

    ``fraction`` is what the caller asked for; ``fraction_swept`` what
    the kernel actually covered after rounding the diagonal count up to
    whole kernel blocks (always ``>= fraction``).  ``exact`` is True
    when the rounding reached full coverage — the result then *is* the
    exact profile.  Measured deviation from exact is deliberately not a
    field: computing it would cost the full sweep the mode exists to
    avoid; the ``anytime`` bench section measures it on fixtures.
    """

    fraction: float  # requested share of the pair budget
    fraction_swept: float  # actual share after block rounding
    pairs_swept: int
    pairs_total: int
    diagonals_swept: int
    diagonals_total: int
    exact: bool

    def to_json(self) -> dict:
        return {
            "fraction": self.fraction,
            "fraction_swept": self.fraction_swept,
            "pairs_swept": self.pairs_swept,
            "pairs_total": self.pairs_total,
            "diagonals_swept": self.diagonals_swept,
            "diagonals_total": self.diagonals_total,
            "exact": self.exact,
            "guarantee": "upper_bound",
        }


def _leading_pairs(limit: int, total_diagonals: int) -> int:
    """Pairs on the first ``limit`` diagonals (of ``total_diagonals``).

    Diagonal ``k`` of the ``L`` admissible ones holds ``L - k`` …
    ``1`` pairs going outward, i.e. the leading diagonals are the
    heaviest; this closed form is what the anytime mode and the bench
    extrapolation both budget with.
    """
    limit = min(int(limit), int(total_diagonals))
    return limit * int(total_diagonals) - limit * (limit - 1) // 2


def _diag_limit_for_pairs(target_pairs: int, total_diagonals: int) -> int:
    """Smallest leading-diagonal count covering ``target_pairs`` pairs."""
    low, high = 1, max(1, int(total_diagonals))
    while low < high:
        mid = (low + high) // 2
        if _leading_pairs(mid, total_diagonals) >= target_pairs:
            high = mid
        else:
            low = mid + 1
    return low


def _resolve_approx(
    approx: "float | None", total_diagonals: int, block: int = _DIAG_BLOCK
) -> "tuple[int | None, ApproxReport | None]":
    """Turn an ``approx=`` fraction into a diagonal limit plus report.

    The limit is rounded *up* to whole kernel blocks because the sweep
    always processes full blocks — the report accounts for what is
    actually swept, not what was asked for.  Full coverage after
    rounding degrades gracefully to the exact sweep (``limit=None``).
    """
    if approx is None:
        return None, None
    fraction = float(approx)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"approx must be in (0, 1], got {approx!r}")
    L = int(total_diagonals)
    if L <= 0:
        return None, ApproxReport(
            fraction=fraction,
            fraction_swept=1.0,
            pairs_swept=0,
            pairs_total=0,
            diagonals_swept=0,
            diagonals_total=0,
            exact=True,
        )
    total_pairs = _leading_pairs(L, L)
    target = max(1, int(np.ceil(fraction * total_pairs)))
    limit = _diag_limit_for_pairs(target, L)
    covered = min(L, block * ((limit + block - 1) // block))
    pairs_swept = _leading_pairs(covered, L)
    report = ApproxReport(
        fraction=fraction,
        fraction_swept=pairs_swept / total_pairs,
        pairs_swept=pairs_swept,
        pairs_total=total_pairs,
        diagonals_swept=covered,
        diagonals_total=L,
        exact=covered >= L,
    )
    return (None if covered >= L else covered), report


@dataclass
class MatrixProfileResult:
    """Self-join matrix profile for window length ``w``.

    ``indices`` is ``None`` when the profile was computed with
    ``with_indices=False`` (the fast path detectors use — nothing on the
    scoring path reads neighbour locations).  ``chunk_width`` and
    ``workspace_bytes`` record how the sweep was tiled: the column-chunk
    width actually used (``None`` = one full-width chunk; sharded sweeps
    derive a width per shard, so only an explicit ``chunk_width`` is
    echoed back) and the exact bytes of sweep scratch it allocated, from
    the kernel's allocation accounting — for a sharded sweep the
    *largest single shard*, the per-worker number ``max_memory_bytes``
    divides by ``jobs`` to bound.

    ``jobs``/``shards`` record how a parallel sweep executed (``None``/
    ``0`` for the single-sweep path); ``report`` is the anytime mode's
    :class:`ApproxReport` (``None`` for exact sweeps) — when present,
    ``profile`` is a pointwise upper bound and ``indices`` are the
    best neighbours *among the pairs swept*, the witnesses of that
    bound.
    """

    w: int
    profile: np.ndarray  # nearest-neighbour distance per subsequence
    indices: np.ndarray | None  # nearest-neighbour location per subsequence
    chunk_width: int | None = None
    workspace_bytes: int | None = None
    jobs: int | None = None
    shards: int = 0
    report: ApproxReport | None = None

    @property
    def discord_index(self) -> int:
        """Start index of the top discord subsequence."""
        return int(np.argmax(np.where(np.isfinite(self.profile), self.profile, -np.inf)))


class _Workspace:
    """Accounting allocator for one diagonal sweep's scratch arrays.

    Every array the sweep allocates goes through here, so the recorded
    byte total *is* the sweep's working set — ``max_memory_bytes`` and
    the budget regression tests key off it rather than off wall-clock
    or RSS sampling.  The O(n) inputs (series, per-window stats) belong
    to the caller and are not counted; docs/kernel.md tabulates the
    full memory model.
    """

    __slots__ = ("bytes",)

    def __init__(self) -> None:
        self.bytes = 0

    def _track(self, array: np.ndarray) -> np.ndarray:
        self.bytes += array.nbytes
        return array

    def empty(self, shape, dtype=float) -> np.ndarray:
        return self._track(np.empty(shape, dtype=dtype))

    def zeros(self, shape, dtype=float) -> np.ndarray:
        return self._track(np.zeros(shape, dtype=dtype))

    def full(self, shape, value: float) -> np.ndarray:
        return self._track(np.full(shape, value))

    def arange(self, stop: int) -> np.ndarray:
        return self._track(np.arange(stop, dtype=np.int64))


def _sweep_allocation_bytes(
    m: int,
    exclusion: int,
    *,
    need_indices: bool,
    chunk: "int | None" = None,
    block: int = _DIAG_BLOCK,
) -> int:
    """Exact bytes :func:`_diagonal_sweep` will allocate.

    Kept in lockstep with the sweep's ``ws.*`` calls (a tier-1 test
    asserts equality with the live accounting); the budget solver uses
    it to derive chunk widths without trial allocations.
    """
    total = m * _ELEM  # best
    if need_indices:
        total += m * 8  # bestj (int64)
    if exclusion >= m:
        return total
    total += 3 * (m + block) * _ELEM  # dfp, dgp, invp
    total += 2 * m * _ELEM  # c0 + anchor scratch
    L0 = m - exclusion
    B0 = min(block, L0)
    cw0 = L0 if chunk is None else max(1, min(int(chunk), L0))
    sw0 = cw0 + B0
    total += B0 * (cw0 + B0) * _ELEM  # buf (chunk columns + skew padding)
    total += B0 * cw0 * _ELEM  # tmp (second product term)
    total += B0 * _ELEM  # carry
    total += sw0 * _ELEM  # rowval
    if need_indices:
        wide = max(sw0, L0)
        total += sw0 * 8  # rowarg (intp)
        total += wide * 8  # tmpj (int64)
        total += wide * 1  # upd (bool)
        total += L0 * _ELEM  # colval
        total += L0 * 8  # colarg (intp)
        total += m * 8  # idx (int64)
    return total


def _chunk_for_budget(
    m: int,
    exclusion: int,
    max_memory_bytes: int,
    *,
    need_indices: bool,
    block: int = _DIAG_BLOCK,
) -> int:
    """Widest chunk whose sweep workspace fits ``max_memory_bytes``."""
    if exclusion >= m:
        return 1  # degenerate: the sweep allocates no block buffers
    floor = _sweep_allocation_bytes(
        m, exclusion, need_indices=need_indices, chunk=1, block=block
    )
    if floor > max_memory_bytes:
        raise ValueError(
            f"max_memory_bytes={max_memory_bytes} is below the sweep's "
            f"minimum working set of {floor} bytes (chunk width 1, "
            f"{m} subsequences); the O(n) recurrence vectors cannot be "
            f"tiled away"
        )
    low, high = 1, m - exclusion
    while low < high:
        mid = (low + high + 1) // 2
        fits = (
            _sweep_allocation_bytes(
                m, exclusion, need_indices=need_indices, chunk=mid, block=block
            )
            <= max_memory_bytes
        )
        if fits:
            low = mid
        else:
            high = mid - 1
    return low


def _resolve_chunk(
    m: int,
    exclusion: int,
    max_memory_bytes: "int | None",
    chunk_width: "int | None",
    *,
    need_indices: bool,
) -> "int | None":
    """Pick the sweep's column-chunk width.

    An explicit ``chunk_width`` wins; otherwise a budget (argument or
    process-wide default) derives the widest fitting chunk; otherwise
    ``None`` keeps the historical single full-width chunk.
    """
    if chunk_width is not None:
        chunk_width = int(chunk_width)
        if chunk_width < 1:
            raise ValueError(f"chunk_width must be >= 1, got {chunk_width}")
        return chunk_width
    budget = (
        max_memory_bytes if max_memory_bytes is not None else default_memory_budget()
    )
    if budget is None:
        return None
    return _chunk_for_budget(m, exclusion, int(budget), need_indices=need_indices)


def _alive_min(best: np.ndarray, exclusion: int) -> float:
    """Smallest running correlation over rows that have any valid pair.

    Rows in ``[m - exclusion, exclusion)`` (non-empty only when
    ``2 * exclusion > m``) can never pair with anything; their -inf
    sentinel must not block early abandonment.
    """
    m = best.size
    if 2 * exclusion <= m:
        return float(best.min())
    candidates = []
    if m - exclusion > 0:
        candidates.append(float(best[: m - exclusion].min()))
    if exclusion < m:
        candidates.append(float(best[exclusion:].min()))
    return min(candidates) if candidates else np.inf


def _diagonal_sweep(
    x: np.ndarray,
    w: int,
    exclusion: int,
    mean: np.ndarray,
    inv: np.ndarray,
    *,
    need_indices: bool,
    abandon: float | None = None,
    block: int = _DIAG_BLOCK,
    chunk: int | None = None,
    diag_limit: int | None = None,
    tracer=None,
) -> tuple[np.ndarray, np.ndarray | None, int] | None:
    """mpx diagonal traversal over the (mean-shifted) series ``x``.

    ``tracer`` is an *enabled* :class:`repro.obs.Tracer` or ``None``
    (the default and the fast path): the hot loops pay one ``is not
    None`` test per block/chunk, so un-traced sweeps stay within noise
    of the pre-instrumentation kernel — the ``obs`` bench section
    measures exactly this.  When tracing, each diagonal block emits an
    ``mpx.block`` span and each column chunk inside it an ``mpx.chunk``
    span (explicit start/finish, keeping the loop bodies unindented).

    Returns ``(best_correlation, best_index, workspace_bytes)`` per
    subsequence (the index array is ``None`` unless ``need_indices``;
    ``workspace_bytes`` is the exact scratch footprint from allocation
    accounting), or ``None`` when ``abandon`` is given and every
    subsequence's running correlation already exceeds it — i.e. no
    subsequence can still beat the corresponding distance floor.

    ``chunk`` bounds the column width of the block buffers: each
    diagonal block is swept in fixed-width column chunks, the raw
    covariance cumsum carried across chunk boundaries, shrinking the
    working set from O(block · n) to O(block · chunk).  The carry is
    the exact running sum at the boundary and ``np.cumsum`` accumulates
    strictly sequentially, so the float additions happen in the same
    order whatever the width — results are bit-identical to the
    unchunked sweep (``chunk=None``, one full-width chunk).

    ``diag_limit`` stops after that many diagonals, covering only pairs
    with separation in ``[exclusion, exclusion + diag_limit)``.  The
    scaling bench uses it to measure the peak working set (the first
    block's buffers are the widest) and extrapolate timings without
    paying the full O(m²) sweep; the partial ``best`` it returns is
    *not* a valid profile.
    """
    n = x.size
    m = n - w + 1
    ws = _Workspace()
    best = ws.full(m, -np.inf)
    bestj = ws.zeros(m, dtype=np.int64) if need_indices else None
    if exclusion >= m:
        return best, bestj, ws.bytes

    # differential update terms (the mpx formulation): along diagonal d,
    # cov(i, i+d) = cov(i-1, i-1+d) + df[i]·dg[i+d] + df[i+d]·dg[i]
    dfp = ws.zeros(m + block)
    dgp = ws.zeros(m + block)
    invp = ws.zeros(m + block)
    dfp[1:m] = 0.5 * (x[w:] - x[: n - w])
    dgp[1:m] = (x[w:] - mean[1:]) + (x[: m - 1] - mean[: m - 1])
    invp[:m] = inv

    # exact anchor covariance per diagonal; np.correlate keeps full
    # double precision (an FFT here would cost ~1e-8 relative noise on
    # large-amplitude series)
    q = x[:w] - mean[0]
    c0 = np.correlate(x, q, mode="valid")
    ws.bytes += c0.nbytes
    anchor = ws.empty(m)
    np.multiply(mean, q.sum(), out=anchor)
    c0 -= anchor

    L0 = m - exclusion
    B0 = min(block, L0)
    cw0 = L0 if chunk is None else max(1, min(int(chunk), L0))
    sw0 = cw0 + B0  # widest skewed-reduction target
    buf = ws.empty((B0, cw0 + B0))
    tmp = ws.empty((B0, cw0))
    carry = ws.empty(B0)
    rowval = ws.empty(sw0)
    if need_indices:
        wide = max(sw0, L0)
        rowarg = ws.empty(sw0, dtype=np.intp)
        tmpj = ws.empty(wide, dtype=np.int64)
        upd = ws.empty(wide, dtype=bool)
        colval = ws.empty(L0)
        colarg = ws.empty(L0, dtype=np.intp)
        idx = ws.arange(m)

    stop = m if diag_limit is None else min(m, exclusion + int(diag_limit))
    for d in range(exclusion, stop, block):
        B = min(block, m - d)
        L = m - d
        if tracer is not None:
            block_span = tracer.start_span("mpx.block", d=d, rows=B)
        if need_indices:
            colval[:L].fill(-np.inf)
        for p0 in range(0, L, cw0):
            p1 = min(p0 + cw0, L)
            cw = p1 - p0
            if tracer is not None:
                chunk_span = tracer.start_span("mpx.chunk", p0=p0, cols=cw)
            rowlen = cw + B
            # block rows live in one reusable buffer; B padding columns
            # past each row hold -inf so the skewed view below reads a
            # neutral element wherever it crosses a row boundary
            CB = as_strided(buf, shape=(B, rowlen), strides=(rowlen * _ELEM, _ELEM))
            CB[:, cw:] = -np.inf
            C = CB[:, :cw]
            lo = max(p0, 1)  # global column 0 holds the anchor, not a product
            if p1 > lo:
                span = p1 - lo
                off = lo - p0
                Vdg = as_strided(
                    dgp[d + lo :], shape=(B, span), strides=(_ELEM, _ELEM)
                )
                Vdf = as_strided(
                    dfp[d + lo :], shape=(B, span), strides=(_ELEM, _ELEM)
                )
                t = as_strided(
                    tmp, shape=(B, span), strides=(tmp.strides[0], _ELEM)
                )
                np.multiply(Vdg, dfp[lo:p1], out=C[:, off:])
                np.multiply(Vdf, dgp[lo:p1], out=t)
                C[:, off:] += t
            if p0 == 0:
                C[:, 0] = c0[d : d + B]
            else:
                # chunk-carry: the raw covariance cumsum resumes from the
                # previous chunk's last column, so s_{p0} = carry + a_{p0}
                # is the very addition the unchunked cumsum would perform
                C[:, 0] += carry[:B]
            np.cumsum(C, axis=1, out=C)
            carry[:B] = C[:, cw - 1]  # raw sums, before correlation scaling
            C *= invp[p0:p1]
            Vinv = as_strided(
                invp[d + p0 :], shape=(B, cw), strides=(_ELEM, _ELEM)
            )
            C *= Vinv
            # row b covers diagonal d+b whose true length is L-b: blank
            # whatever part of the short tail falls inside this chunk so
            # reductions never see stale pairs
            if L - B + 1 < p1:
                for b in range(max(1, L - p1 + 1), B):
                    CB[b, max(L - b - p0, 0) : cw] = -np.inf
            # skewed view: S[b, p] = C[b, p-b], so column p collects every
            # correlation whose *larger* index is d+p0+p — the symmetric
            # half of the self-join
            sw = min(cw + B - 1, L - p0)
            S = as_strided(
                CB, shape=(B, sw), strides=((rowlen - 1) * _ELEM, _ELEM)
            )
            if need_indices:
                C.max(axis=0, out=rowval[:cw])
                C.argmax(axis=0, out=rowarg[:cw])
                np.greater(rowval[:cw], best[p0:p1], out=upd[:cw])
                np.copyto(best[p0:p1], rowval[:cw], where=upd[:cw])
                np.add(rowarg[:cw], idx[d + p0 : d + p1], out=tmpj[:cw])
                np.copyto(bestj[p0:p1], tmpj[:cw], where=upd[:cw])
                S.max(axis=0, out=rowval[:sw])
                S.argmax(axis=0, out=rowarg[:sw])
                # merge ties with >=: later chunks hold strictly smaller
                # row offsets for the same column, so the final winner is
                # the first-occurrence argmax the unchunked reduction
                # picks — neighbour indices stay bit-identical too
                np.greater_equal(
                    rowval[:sw], colval[p0 : p0 + sw], out=upd[:sw]
                )
                np.copyto(colval[p0 : p0 + sw], rowval[:sw], where=upd[:sw])
                np.copyto(colarg[p0 : p0 + sw], rowarg[:sw], where=upd[:sw])
            else:
                C.max(axis=0, out=rowval[:cw])
                np.maximum(best[p0:p1], rowval[:cw], out=best[p0:p1])
                S.max(axis=0, out=rowval[:sw])
                np.maximum(
                    best[d + p0 : d + p0 + sw],
                    rowval[:sw],
                    out=best[d + p0 : d + p0 + sw],
                )
            if tracer is not None:
                tracer.end_span(chunk_span)
        if need_indices:
            np.greater(colval[:L], best[d:], out=upd[:L])
            np.copyto(best[d:], colval[:L], where=upd[:L])
            np.subtract(idx[:L], colarg[:L], out=tmpj[:L])
            np.copyto(bestj[d:], tmpj[:L], where=upd[:L])
        if tracer is not None:
            tracer.end_span(block_span)
        if abandon is not None and _alive_min(best, exclusion) >= abandon:
            return None
    return best, bestj, ws.bytes


def _finalize(
    best: np.ndarray,
    bestj: np.ndarray | None,
    w: int,
    exclusion: int,
    constant: np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Correlations → distances, with the constant-window conventions.

    Constant windows carry zero inverse-std through the sweep, so every
    pair touching one contributed correlation 0; the true values are
    corr 1 (distance 0) for constant↔constant and corr ½ (distance
    ``sqrt(w)``) for constant↔non-constant.  Both only ever *raise* a
    correlation, so fixing them after the sweep is exact.
    """
    m = best.size
    if constant.any():
        const_idx = np.flatnonzero(constant)
        ii = np.arange(m)
        can_lo = ii >= exclusion
        can_hi = ii + exclusion <= m - 1
        has_lo = const_idx[0] <= ii - exclusion
        has_hi = const_idx[-1] >= ii + exclusion
        has_const = has_lo | has_hi
        # smallest admissible constant neighbour, to mirror the argmin
        # tie-break of the reference kernels
        pos = np.minimum(
            np.searchsorted(const_idx, ii + exclusion), const_idx.size - 1
        )
        j_const = np.where(has_lo, const_idx[0], const_idx[pos])
        rows_cc = constant & has_const
        rows_cn = constant & ~has_const & (can_lo | can_hi)
        rows_nc = ~constant & has_const & (best < 0.5)
        best[rows_cc] = 1.0
        best[rows_cn] = 0.5
        best[rows_nc] = 0.5
        if bestj is not None:
            bestj[rows_cc] = j_const[rows_cc]
            bestj[rows_nc] = j_const[rows_nc]
            first_valid = np.where(can_lo, 0, ii + exclusion)
            bestj[rows_cn] = first_valid[rows_cn]
    untouched = np.isneginf(best)
    np.clip(best, -1.0, 1.0, out=best)
    profile = np.sqrt(2.0 * w * (1.0 - best))
    if untouched.any():
        profile[untouched] = np.inf
        if bestj is not None:
            bestj[untouched] = 0
    return profile, bestj


def _validated(
    values: np.ndarray, w: int, exclusion: int | None, stats: SlidingStats | None
) -> tuple[SlidingStats, int]:
    values = np.asarray(values, dtype=float)
    n = values.size
    if w < 3:
        raise ValueError(f"window must be >= 3, got {w}")
    if n < 2 * w:
        raise ValueError(
            f"series of length {n} too short for window {w} "
            "(need at least 2*w points)"
        )
    if stats is None:
        stats = SlidingStats(values)
    elif stats.n != n:
        raise ValueError(
            f"sliding stats built for a length-{stats.n} series, got {n}"
        )
    elif values is not stats.values and not np.array_equal(
        values, stats.values
    ):
        raise ValueError(
            "sliding stats were built from a different series than the "
            "values passed in"
        )
    return stats, w if exclusion is None else exclusion


def _resolve_jobs(jobs: "int | None") -> "int | None":
    """Explicit ``jobs`` wins; otherwise the process-wide default."""
    if jobs is None:
        return default_kernel_jobs()
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _worker_budget(
    max_memory_bytes: "int | None", jobs: int
) -> "tuple[int | None, int | None]":
    """Split a process-level budget into per-worker shares.

    Returns ``(budget, per_worker)``.  ``max_memory_bytes`` stays an
    honest *process* cap under parallelism: each of the ``jobs`` workers
    gets an equal share, so the sum of live shard workspaces never
    exceeds the budget (``workspace_bytes × jobs <= budget`` — asserted
    after the sweep against the kernel's exact allocation accounting).
    """
    budget = (
        max_memory_bytes if max_memory_bytes is not None else default_memory_budget()
    )
    if budget is None:
        return None, None
    budget = int(budget)
    return budget, budget // jobs


def _adopt_shards(tracer, registry, outcome) -> None:
    """Splice shard traces/metrics into the parent, in shard order.

    Adoption order is the shard plan's order — deterministic and
    jobs-independent — so the merged span tree is identical whether the
    shards ran in-process or across any number of pool workers.
    """
    for records, state in outcome.exports:
        if records:
            tracer.adopt(records)
        if state:
            registry.merge_state(state)


def matrix_profile(
    values: np.ndarray,
    w: int,
    exclusion: int | None = None,
    *,
    stats: SlidingStats | None = None,
    with_indices: bool = True,
    max_memory_bytes: int | None = None,
    chunk_width: int | None = None,
    jobs: int | None = None,
    approx: float | None = None,
) -> MatrixProfileResult:
    """Exact z-normalized self-join matrix profile (mpx diagonal kernel).

    ``exclusion`` is the trivial-match zone half-width; the default ``w``
    enforces the classic discord requirement of *non-overlapping*
    nearest neighbours.  Pass a prebuilt :class:`SlidingStats` via
    ``stats`` to amortize the prefix sums across several window lengths
    (MERLIN does); pass ``with_indices=False`` to skip neighbour-index
    tracking when only the distances matter — that is the detector fast
    path, roughly a third faster.

    ``max_memory_bytes`` caps the sweep's scratch working set: the
    kernel derives the widest column-chunk width whose allocations fit
    the budget (exact accounting, reported as
    :attr:`MatrixProfileResult.workspace_bytes`) and raises
    ``ValueError`` if even chunk width 1 cannot fit.  ``chunk_width``
    sets the width directly (testing/tuning knob) and wins over any
    budget.  With neither, the process-wide default from
    :func:`set_default_memory_budget` / ``REPRO_MAX_MEMORY`` applies;
    unbounded means one full-width chunk, the fastest layout.  Results
    are bit-identical for every chunk width.

    ``jobs`` shards the diagonal sweep across that many worker
    processes (``jobs=1``: the same shard plan, in-process).  Shards
    are block-aligned and merged with the serial first-occurrence tie
    rule, so profiles *and* neighbour indices are bit-identical to the
    single-sweep kernel for every ``jobs`` value; the memory budget is
    divided per worker (``workspace_bytes`` then reports the largest
    single shard, and ``workspace_bytes × jobs`` honours the process
    cap).  ``None`` defers to :func:`set_default_kernel_jobs` /
    ``REPRO_KERNEL_JOBS`` (`repro … --kernel-jobs`), else stays on the
    historical single-sweep path.

    ``approx`` enables the anytime mode: sweep only the leading
    diagonals covering at least that fraction of the pair budget and
    return a pointwise **upper bound** on the exact profile, with the
    accounting in :attr:`MatrixProfileResult.report` (an
    :class:`ApproxReport`).  The bound is monotone — a larger fraction
    never loosens any entry — and composes with ``jobs``.
    """
    stats, exclusion = _validated(values, w, exclusion, stats)
    mean, inv, constant = stats.kernel_stats(w)
    m = stats.n - w + 1
    jobs = _resolve_jobs(jobs)
    diag_limit, report = _resolve_approx(approx, m - exclusion)
    tracer = get_tracer()
    registry = get_registry()

    if jobs is None:
        chunk = _resolve_chunk(
            m,
            exclusion,
            max_memory_bytes,
            chunk_width,
            need_indices=with_indices,
        )
        with tracer.span(
            "mpx.profile",
            n=stats.n,
            w=w,
            chunk=chunk,
            with_indices=with_indices,
        ) as span:
            if span is not None and report is not None:
                span.set(approx=report.fraction, diag_limit=report.diagonals_swept)
            best, bestj, workspace = _diagonal_sweep(
                stats.shifted,
                w,
                exclusion,
                mean,
                inv,
                need_indices=with_indices,
                chunk=chunk,
                diag_limit=diag_limit,
                tracer=tracer if tracer.enabled else None,
            )
            profile, indices = _finalize(best, bestj, w, exclusion, constant)
        shards = 0
    else:
        from .parallel import sharded_sweep

        budget, per_worker = _worker_budget(max_memory_bytes, jobs)
        with tracer.span(
            "mpx.profile",
            n=stats.n,
            w=w,
            chunk=chunk_width,
            with_indices=with_indices,
            jobs=jobs,
        ) as span:
            if span is not None and report is not None:
                span.set(approx=report.fraction, diag_limit=report.diagonals_swept)
            outcome = sharded_sweep(
                stats.values,
                w,
                exclusion,
                need_indices=with_indices,
                jobs=jobs,
                chunk_width=chunk_width,
                worker_budget=per_worker,
                diag_stop=(
                    None if diag_limit is None else exclusion + diag_limit
                ),
                traced=tracer.enabled,
            )
            if span is not None:
                span.set(shards=len(outcome.shards))
            _adopt_shards(tracer, registry, outcome)
            profile, indices = _finalize(
                outcome.best, outcome.bestj, w, exclusion, constant
            )
        workspace = outcome.workspace_bytes
        shards = len(outcome.shards)
        chunk = chunk_width
        registry.counter("mpx_shards").inc(shards)
        assert budget is None or workspace * jobs <= budget, (
            f"per-worker budgeting violated: {workspace} bytes/worker × "
            f"{jobs} jobs exceeds the {budget}-byte process budget"
        )

    registry.counter("mpx_profiles").inc()
    registry.gauge("mpx_workspace_bytes").set(workspace)
    return MatrixProfileResult(
        w=w,
        profile=profile,
        indices=indices,
        chunk_width=chunk,
        workspace_bytes=workspace,
        jobs=jobs,
        shards=shards,
        report=report,
    )


def discord_search(
    values: np.ndarray,
    w: int,
    exclusion: int | None = None,
    *,
    stats: SlidingStats | None = None,
    normalized_floor: float | None = None,
    max_memory_bytes: int | None = None,
    chunk_width: int | None = None,
    jobs: int | None = None,
) -> tuple[int, float] | None:
    """Top discord ``(start_index, distance)`` for one window length.

    ``normalized_floor`` enables MERLIN-style early abandonment: it is a
    length-normalized distance (``d / sqrt(w)``), and the sweep aborts —
    returning ``None`` — as soon as *every* subsequence already has a
    neighbour at or below that floor, because the length then cannot
    improve on the best discord found so far.  ``max_memory_bytes`` /
    ``chunk_width`` bound the sweep's working set exactly as in
    :func:`matrix_profile`, so MERLIN's whole length sweep runs inside
    the budget.

    ``jobs`` shards the sweep across worker processes exactly as in
    :func:`matrix_profile` (same bit-identical merge, same per-worker
    budget split).  Early abandonment stays sound under sharding: a
    shard that saturates on its own diagonals proves the merged profile
    saturates too, and the merged result gets the same final
    all-subsequences check the serial sweep ends on — so the
    abandoned/not-abandoned answer is identical for every ``jobs``.
    """
    stats, exclusion = _validated(values, w, exclusion, stats)
    mean, inv, constant = stats.kernel_stats(w)
    abandon = None
    if normalized_floor is not None and np.isfinite(normalized_floor):
        # d/sqrt(w) <= floor  ⇔  corr >= 1 - floor²/2, identically in w
        abandon = 1.0 - 0.5 * float(normalized_floor) ** 2
    jobs = _resolve_jobs(jobs)
    tracer = get_tracer()
    registry = get_registry()
    if jobs is None:
        chunk = _resolve_chunk(
            stats.n - w + 1,
            exclusion,
            max_memory_bytes,
            chunk_width,
            need_indices=False,
        )
        with tracer.span("mpx.discord_search", n=stats.n, w=w) as span:
            swept = _diagonal_sweep(
                stats.shifted,
                w,
                exclusion,
                mean,
                inv,
                need_indices=False,
                abandon=abandon,
                chunk=chunk,
                tracer=tracer if tracer.enabled else None,
            )
            if swept is None:
                if span is not None:
                    span.set(abandoned=True)
                registry.counter("mpx_abandoned_sweeps").inc()
                return None
        best, _, _ = swept
    else:
        from .parallel import sharded_sweep

        _budget, per_worker = _worker_budget(max_memory_bytes, jobs)
        with tracer.span(
            "mpx.discord_search", n=stats.n, w=w, jobs=jobs
        ) as span:
            outcome = sharded_sweep(
                stats.values,
                w,
                exclusion,
                need_indices=False,
                jobs=jobs,
                chunk_width=chunk_width,
                worker_budget=per_worker,
                abandon=abandon,
                traced=tracer.enabled,
            )
            if span is not None:
                span.set(shards=len(outcome.shards))
            _adopt_shards(tracer, registry, outcome)
            registry.counter("mpx_shards").inc(len(outcome.shards))
            # the serial sweep's abandon rule is a final-state property
            # (the running minimum only grows); a shard abandoning on
            # its own subset already implies it, but the merged check
            # keeps the answer identical when no single shard saturates
            if outcome.abandoned or (
                abandon is not None
                and _alive_min(outcome.best, exclusion) >= abandon
            ):
                if span is not None:
                    span.set(abandoned=True)
                registry.counter("mpx_abandoned_sweeps").inc()
                return None
        best = outcome.best
    profile, _ = _finalize(best, None, w, exclusion, constant)
    finite = np.where(np.isfinite(profile), profile, -np.inf)
    location = int(np.argmax(finite))
    return location, float(finite[location])


def discords(
    values: np.ndarray, w: int, top_k: int = 1, exclusion: int | None = None
) -> list[tuple[int, float]]:
    """Top-k discords as ``(start_index, distance)``, non-overlapping."""
    result = matrix_profile(values, w, exclusion, with_indices=False)
    profile = np.where(np.isfinite(result.profile), result.profile, -np.inf)
    found: list[tuple[int, float]] = []
    for _ in range(top_k):
        best = int(np.argmax(profile))
        if profile[best] == -np.inf:
            # every remaining subsequence overlaps an earlier discord
            # (or had no valid neighbour): asking for more top_k cannot
            # produce more discords, so stop instead of re-scanning
            break
        found.append((best, float(profile[best])))
        lo = max(0, best - w)
        profile[lo : best + w] = -np.inf
    return found


def subsequence_to_point_scores(
    profile: np.ndarray, w: int, n: int, fill: float = -np.inf
) -> np.ndarray:
    """Lift per-subsequence scores to per-point scores.

    A point inherits the maximum score over every subsequence covering
    it, so the whole discord window lights up.  Points covered by no
    finite-scored subsequence get ``fill``.  The maximum is the O(n)
    sliding extremum from :mod:`repro.detectors.sliding`, not the old
    O(n·w) stride trick.
    """
    profile = np.asarray(profile, dtype=float)
    num_subs = profile.size
    if num_subs != n - w + 1:
        raise ValueError(
            f"profile length {num_subs} inconsistent with n={n}, w={w}"
        )
    padded = np.concatenate(
        [np.full(w - 1, fill), np.where(np.isfinite(profile), profile, fill), np.full(w - 1, fill)]
    )
    return sliding_max(padded, w)


class MatrixProfileDetector(Detector):
    """Discord detector: per-point score from the matrix profile.

    ``max_memory_bytes`` caps the kernel's sweep workspace (chunk width
    auto-derived); ``None`` defers to the process-wide default set via
    ``repro score/run --max-memory`` or ``REPRO_MAX_MEMORY``.  ``jobs``
    shards the sweep across worker processes (``None`` defers to
    ``--kernel-jobs`` / ``REPRO_KERNEL_JOBS``) — scores are
    bit-identical either way.  ``approx`` trades exactness for speed:
    scores come from the anytime upper-bound profile over that fraction
    of the pair budget; unlike ``jobs`` it *changes the output*, which
    is why it is a spec parameter that reaches manifests and cache keys.
    """

    def __init__(
        self,
        w: int = 100,
        exclusion: int | None = None,
        max_memory_bytes: int | None = None,
        jobs: int | None = None,
        approx: float | None = None,
    ) -> None:
        self.w = w
        self.exclusion = exclusion
        self.max_memory_bytes = max_memory_bytes
        self.jobs = jobs
        self.approx = approx

    @property
    def name(self) -> str:
        return f"MatrixProfile(w={self.w})"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        result = matrix_profile(
            values,
            self.w,
            self.exclusion,
            with_indices=False,
            max_memory_bytes=self.max_memory_bytes,
            jobs=self.jobs,
            approx=self.approx,
        )
        return subsequence_to_point_scores(result.profile, self.w, values.size)
