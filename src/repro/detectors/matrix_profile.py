"""Matrix profile (mpx diagonal kernel) and time series discords.

The paper repeatedly benchmarks against "time series discords" ([19],
[21]; Fig 8 and Fig 13) — the subsequence whose z-normalized Euclidean
distance to its nearest non-overlapping neighbour is largest.  The matrix
profile gives every subsequence's nearest-neighbour distance; its argmax
is the discord.

Implementation: an mpx-style diagonal traversal of the self-join.  Per-
window mean, inverse std and the differential update terms are computed
once (O(n), via :mod:`repro.detectors.sliding`); each diagonal of the
distance matrix then updates Pearson correlations with a single cumsum —
one O(n − d) vector op per diagonal, self-join symmetry filling both
triangles at once — and correlations become distances only at the very
end.  Diagonals are processed in blocks so the per-diagonal numpy
dispatch overhead amortizes away; a skewed stride view aligns each
block's anti-diagonals so the symmetric (column-side) maximum is one
reduction instead of a copy.  Compared with the retained per-row STOMP
loop (:func:`repro.detectors.reference.stomp_profile`) this is ~3.3×
faster at n = 20,000 on one core (see ``benchmarks/perf/BENCH_3.json``);
compared with the O(n²·w) brute force it is ~50× faster, at identical
profiles to ~1e-10.

Exactly-constant windows have no z-normalization; they are fixed up in a
vectorized post-pass with the same convention as before: distance 0
between two constant windows, ``sqrt(w)`` between a constant and a
non-constant window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .base import Detector
from .sliding import SlidingStats, moving_mean_std, sliding_max

__all__ = [
    "sliding_dot_products",
    "moving_mean_std",
    "matrix_profile",
    "MatrixProfileResult",
    "discord_search",
    "discords",
    "subsequence_to_point_scores",
    "MatrixProfileDetector",
]

# diagonals per kernel block, large enough to amortize numpy dispatch.
# NOTE the working set is O(block · n): the reusable row buffer plus its
# product scratch cost ~2 · block · 8 bytes per subsequence (~2 GB at
# n = 1e6), where the replaced STOMP loop was O(n).  Fine at the series
# lengths the benchmarks run today; for million-point series the block
# sweep needs column-chunk tiling (fixed-width chunks with a cumsum
# carry) to make the buffers O(block · chunk) — tracked in ROADMAP.md.
_DIAG_BLOCK = 128
_ELEM = np.dtype(float).itemsize


def sliding_dot_products(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of ``query`` with every window of ``series`` (FFT)."""
    query = np.asarray(query, dtype=float)
    series = np.asarray(series, dtype=float)
    m, n = query.size, series.size
    if m > n:
        raise ValueError(f"query ({m}) longer than series ({n})")
    size = 1 << int(np.ceil(np.log2(n + m)))
    fft_series = np.fft.rfft(series, size)
    fft_query = np.fft.rfft(query[::-1], size)
    product = np.fft.irfft(fft_series * fft_query, size)
    return product[m - 1 : n]


@dataclass
class MatrixProfileResult:
    """Self-join matrix profile for window length ``w``.

    ``indices`` is ``None`` when the profile was computed with
    ``with_indices=False`` (the fast path detectors use — nothing on the
    scoring path reads neighbour locations).
    """

    w: int
    profile: np.ndarray  # nearest-neighbour distance per subsequence
    indices: np.ndarray | None  # nearest-neighbour location per subsequence

    @property
    def discord_index(self) -> int:
        """Start index of the top discord subsequence."""
        return int(np.argmax(np.where(np.isfinite(self.profile), self.profile, -np.inf)))


def _alive_min(best: np.ndarray, exclusion: int) -> float:
    """Smallest running correlation over rows that have any valid pair.

    Rows in ``[m - exclusion, exclusion)`` (non-empty only when
    ``2 * exclusion > m``) can never pair with anything; their -inf
    sentinel must not block early abandonment.
    """
    m = best.size
    if 2 * exclusion <= m:
        return float(best.min())
    candidates = []
    if m - exclusion > 0:
        candidates.append(float(best[: m - exclusion].min()))
    if exclusion < m:
        candidates.append(float(best[exclusion:].min()))
    return min(candidates) if candidates else np.inf


def _diagonal_sweep(
    x: np.ndarray,
    w: int,
    exclusion: int,
    mean: np.ndarray,
    inv: np.ndarray,
    *,
    need_indices: bool,
    abandon: float | None = None,
    block: int = _DIAG_BLOCK,
) -> tuple[np.ndarray, np.ndarray | None] | None:
    """mpx diagonal traversal over the (mean-shifted) series ``x``.

    Returns ``(best_correlation, best_index)`` per subsequence (the
    index array is ``None`` unless ``need_indices``), or ``None`` when
    ``abandon`` is given and every subsequence's running correlation
    already exceeds it — i.e. no subsequence can still beat the
    corresponding distance floor.
    """
    n = x.size
    m = n - w + 1
    best = np.full(m, -np.inf)
    bestj = np.zeros(m, dtype=np.int64) if need_indices else None
    if exclusion >= m:
        return best, bestj

    # differential update terms (the mpx formulation): along diagonal d,
    # cov(i, i+d) = cov(i-1, i-1+d) + df[i]·dg[i+d] + df[i+d]·dg[i]
    dfp = np.zeros(m + block)
    dgp = np.zeros(m + block)
    invp = np.zeros(m + block)
    dfp[1:m] = 0.5 * (x[w:] - x[: n - w])
    dgp[1:m] = (x[w:] - mean[1:]) + (x[: m - 1] - mean[: m - 1])
    invp[:m] = inv

    # exact anchor covariance per diagonal; np.correlate keeps full
    # double precision (an FFT here would cost ~1e-8 relative noise on
    # large-amplitude series)
    q = x[:w] - mean[0]
    c0 = np.correlate(x, q, mode="valid") - mean * q.sum()

    idx = np.arange(m, dtype=np.int64)
    L0 = m - exclusion
    B0 = min(block, L0)
    buf = np.empty((B0, L0 + B0))
    tmp = np.empty((B0, max(L0 - 1, 1)))

    for d in range(exclusion, m, block):
        B = min(block, m - d)
        L = m - d
        rowlen = L + B
        # block rows live in one reusable buffer; B padding columns past
        # each row hold -inf so the skewed view below reads a neutral
        # element wherever it crosses a row boundary
        CB = as_strided(buf, shape=(B, rowlen), strides=(rowlen * _ELEM, _ELEM))
        CB[:, L:] = -np.inf
        C = CB[:, :L]
        Vdg = as_strided(dgp[d:], shape=(B, L), strides=(_ELEM, _ELEM))
        Vdf = as_strided(dfp[d:], shape=(B, L), strides=(_ELEM, _ELEM))
        if L > 1:
            t = as_strided(
                tmp, shape=(B, L - 1), strides=(tmp.strides[0], _ELEM)
            )
            np.multiply(Vdg[:, 1:], dfp[1:L], out=C[:, 1:])
            np.multiply(Vdf[:, 1:], dgp[1:L], out=t)
            C[:, 1:] += t
        C[:, 0] = c0[d : d + B]
        np.cumsum(C, axis=1, out=C)
        C *= invp[:L]
        Vinv = as_strided(invp[d:], shape=(B, L), strides=(_ELEM, _ELEM))
        C *= Vinv
        # row b covers diagonal d+b whose true length is L-b: blank the
        # short tail so reductions never see stale pairs
        for b in range(1, B):
            CB[b, L - b : L] = -np.inf
        # skewed view: S[b, p] = C[b, p-b], so column p collects every
        # correlation whose *larger* index is d+p — the symmetric half
        S = as_strided(CB, shape=(B, L), strides=((rowlen - 1) * _ELEM, _ELEM))
        if need_indices:
            rowarg = C.argmax(axis=0)
            rowval = np.take_along_axis(C, rowarg[None, :], axis=0)[0]
            upd = rowval > best[:L]
            np.copyto(best[:L], rowval, where=upd)
            np.copyto(bestj[:L], idx[:L] + d + rowarg, where=upd)
            colarg = S.argmax(axis=0)
            colval = np.take_along_axis(S, colarg[None, :], axis=0)[0]
            upd = colval > best[d:]
            np.copyto(best[d:], colval, where=upd)
            np.copyto(bestj[d:], idx[:L] - colarg, where=upd)
        else:
            np.maximum(best[:L], C.max(axis=0), out=best[:L])
            np.maximum(best[d:], S.max(axis=0), out=best[d:])
        if abandon is not None and _alive_min(best, exclusion) >= abandon:
            return None
    return best, bestj


def _finalize(
    best: np.ndarray,
    bestj: np.ndarray | None,
    w: int,
    exclusion: int,
    constant: np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Correlations → distances, with the constant-window conventions.

    Constant windows carry zero inverse-std through the sweep, so every
    pair touching one contributed correlation 0; the true values are
    corr 1 (distance 0) for constant↔constant and corr ½ (distance
    ``sqrt(w)``) for constant↔non-constant.  Both only ever *raise* a
    correlation, so fixing them after the sweep is exact.
    """
    m = best.size
    if constant.any():
        const_idx = np.flatnonzero(constant)
        ii = np.arange(m)
        can_lo = ii >= exclusion
        can_hi = ii + exclusion <= m - 1
        has_lo = const_idx[0] <= ii - exclusion
        has_hi = const_idx[-1] >= ii + exclusion
        has_const = has_lo | has_hi
        # smallest admissible constant neighbour, to mirror the argmin
        # tie-break of the reference kernels
        pos = np.minimum(
            np.searchsorted(const_idx, ii + exclusion), const_idx.size - 1
        )
        j_const = np.where(has_lo, const_idx[0], const_idx[pos])
        rows_cc = constant & has_const
        rows_cn = constant & ~has_const & (can_lo | can_hi)
        rows_nc = ~constant & has_const & (best < 0.5)
        best[rows_cc] = 1.0
        best[rows_cn] = 0.5
        best[rows_nc] = 0.5
        if bestj is not None:
            bestj[rows_cc] = j_const[rows_cc]
            bestj[rows_nc] = j_const[rows_nc]
            first_valid = np.where(can_lo, 0, ii + exclusion)
            bestj[rows_cn] = first_valid[rows_cn]
    untouched = np.isneginf(best)
    np.clip(best, -1.0, 1.0, out=best)
    profile = np.sqrt(2.0 * w * (1.0 - best))
    if untouched.any():
        profile[untouched] = np.inf
        if bestj is not None:
            bestj[untouched] = 0
    return profile, bestj


def _validated(
    values: np.ndarray, w: int, exclusion: int | None, stats: SlidingStats | None
) -> tuple[SlidingStats, int]:
    values = np.asarray(values, dtype=float)
    n = values.size
    if w < 3:
        raise ValueError(f"window must be >= 3, got {w}")
    if n < 2 * w:
        raise ValueError(
            f"series of length {n} too short for window {w} "
            "(need at least 2*w points)"
        )
    if stats is None:
        stats = SlidingStats(values)
    elif stats.n != n:
        raise ValueError(
            f"sliding stats built for a length-{stats.n} series, got {n}"
        )
    elif values is not stats.values and not np.array_equal(
        values, stats.values
    ):
        raise ValueError(
            "sliding stats were built from a different series than the "
            "values passed in"
        )
    return stats, w if exclusion is None else exclusion


def matrix_profile(
    values: np.ndarray,
    w: int,
    exclusion: int | None = None,
    *,
    stats: SlidingStats | None = None,
    with_indices: bool = True,
) -> MatrixProfileResult:
    """Exact z-normalized self-join matrix profile (mpx diagonal kernel).

    ``exclusion`` is the trivial-match zone half-width; the default ``w``
    enforces the classic discord requirement of *non-overlapping*
    nearest neighbours.  Pass a prebuilt :class:`SlidingStats` via
    ``stats`` to amortize the prefix sums across several window lengths
    (MERLIN does); pass ``with_indices=False`` to skip neighbour-index
    tracking when only the distances matter — that is the detector fast
    path, roughly a third faster.
    """
    stats, exclusion = _validated(values, w, exclusion, stats)
    mean, inv, constant = stats.kernel_stats(w)
    best, bestj = _diagonal_sweep(
        stats.shifted, w, exclusion, mean, inv, need_indices=with_indices
    )
    profile, indices = _finalize(best, bestj, w, exclusion, constant)
    return MatrixProfileResult(w=w, profile=profile, indices=indices)


def discord_search(
    values: np.ndarray,
    w: int,
    exclusion: int | None = None,
    *,
    stats: SlidingStats | None = None,
    normalized_floor: float | None = None,
) -> tuple[int, float] | None:
    """Top discord ``(start_index, distance)`` for one window length.

    ``normalized_floor`` enables MERLIN-style early abandonment: it is a
    length-normalized distance (``d / sqrt(w)``), and the sweep aborts —
    returning ``None`` — as soon as *every* subsequence already has a
    neighbour at or below that floor, because the length then cannot
    improve on the best discord found so far.
    """
    stats, exclusion = _validated(values, w, exclusion, stats)
    mean, inv, constant = stats.kernel_stats(w)
    abandon = None
    if normalized_floor is not None and np.isfinite(normalized_floor):
        # d/sqrt(w) <= floor  ⇔  corr >= 1 - floor²/2, identically in w
        abandon = 1.0 - 0.5 * float(normalized_floor) ** 2
    swept = _diagonal_sweep(
        stats.shifted,
        w,
        exclusion,
        mean,
        inv,
        need_indices=False,
        abandon=abandon,
    )
    if swept is None:
        return None
    best, _ = swept
    profile, _ = _finalize(best, None, w, exclusion, constant)
    finite = np.where(np.isfinite(profile), profile, -np.inf)
    location = int(np.argmax(finite))
    return location, float(finite[location])


def discords(
    values: np.ndarray, w: int, top_k: int = 1, exclusion: int | None = None
) -> list[tuple[int, float]]:
    """Top-k discords as ``(start_index, distance)``, non-overlapping."""
    result = matrix_profile(values, w, exclusion, with_indices=False)
    profile = np.where(np.isfinite(result.profile), result.profile, -np.inf)
    found: list[tuple[int, float]] = []
    for _ in range(top_k):
        best = int(np.argmax(profile))
        if profile[best] == -np.inf:
            # every remaining subsequence overlaps an earlier discord
            # (or had no valid neighbour): asking for more top_k cannot
            # produce more discords, so stop instead of re-scanning
            break
        found.append((best, float(profile[best])))
        lo = max(0, best - w)
        profile[lo : best + w] = -np.inf
    return found


def subsequence_to_point_scores(
    profile: np.ndarray, w: int, n: int, fill: float = -np.inf
) -> np.ndarray:
    """Lift per-subsequence scores to per-point scores.

    A point inherits the maximum score over every subsequence covering
    it, so the whole discord window lights up.  Points covered by no
    finite-scored subsequence get ``fill``.  The maximum is the O(n)
    sliding extremum from :mod:`repro.detectors.sliding`, not the old
    O(n·w) stride trick.
    """
    profile = np.asarray(profile, dtype=float)
    num_subs = profile.size
    if num_subs != n - w + 1:
        raise ValueError(
            f"profile length {num_subs} inconsistent with n={n}, w={w}"
        )
    padded = np.concatenate(
        [np.full(w - 1, fill), np.where(np.isfinite(profile), profile, fill), np.full(w - 1, fill)]
    )
    return sliding_max(padded, w)


class MatrixProfileDetector(Detector):
    """Discord detector: per-point score from the matrix profile."""

    def __init__(self, w: int = 100, exclusion: int | None = None) -> None:
        self.w = w
        self.exclusion = exclusion

    @property
    def name(self) -> str:
        return f"MatrixProfile(w={self.w})"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        result = matrix_profile(values, self.w, self.exclusion, with_indices=False)
        return subsequence_to_point_scores(result.profile, self.w, values.size)
