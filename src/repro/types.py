"""Core containers shared by every subsystem.

The whole library standardizes on three representations:

* ``AnomalyRegion`` — one half-open integer interval ``[start, end)``.
* ``Labels`` — an ordered, non-overlapping collection of regions over a
  series of known length, convertible to/from a boolean point mask.
* ``LabeledSeries`` — a univariate series plus its labels, an optional
  train-prefix length, and free-form metadata.

Multivariate data (e.g. the simulated Server Machine Dataset) is handled
as a 2-D array plus per-dimension ``LabeledSeries`` views, built by the
dataset modules.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AnomalyRegion",
    "Labels",
    "LabeledSeries",
    "Archive",
]


@dataclass(frozen=True, order=True)
class AnomalyRegion:
    """A half-open labeled interval ``[start, end)`` in point indices."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"region start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"region must be non-empty: start={self.start}, end={self.end}"
            )

    @property
    def length(self) -> int:
        """Number of points covered by the region."""
        return self.end - self.start

    @property
    def center(self) -> int:
        """Integer midpoint of the region."""
        return (self.start + self.end - 1) // 2

    def contains(self, index: int, slop: int = 0) -> bool:
        """True if ``index`` falls inside the region widened by ``slop``."""
        return self.start - slop <= index < self.end + slop

    def distance_to(self, index: int) -> int:
        """Distance from ``index`` to the region (0 if inside)."""
        if index < self.start:
            return self.start - index
        if index >= self.end:
            return index - self.end + 1
        return 0

    def overlaps(self, other: "AnomalyRegion") -> bool:
        """True if the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def expanded(self, slop: int, n: int | None = None) -> "AnomalyRegion":
        """Region widened by ``slop`` on both sides, clipped to ``[0, n)``."""
        start = max(0, self.start - slop)
        end = self.end + slop
        if n is not None:
            end = min(end, n)
        return AnomalyRegion(start, max(end, start + 1))


def _merge_regions(regions: Iterable[AnomalyRegion]) -> tuple[AnomalyRegion, ...]:
    """Sort regions and merge any that touch or overlap."""
    ordered = sorted(regions)
    merged: list[AnomalyRegion] = []
    for region in ordered:
        if merged and region.start <= merged[-1].end:
            previous = merged.pop()
            region = AnomalyRegion(previous.start, max(previous.end, region.end))
        merged.append(region)
    return tuple(merged)


@dataclass(frozen=True)
class Labels:
    """Ground-truth anomaly labels for a series of length ``n``.

    Regions are stored sorted and non-overlapping (overlapping or touching
    input regions are merged).  An empty region tuple means "no anomaly".
    """

    n: int
    regions: tuple[AnomalyRegion, ...] = ()

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"series length must be positive, got {self.n}")
        merged = _merge_regions(self.regions)
        if merged and merged[-1].end > self.n:
            raise ValueError(
                f"region {merged[-1]} exceeds series length {self.n}"
            )
        object.__setattr__(self, "regions", merged)

    # -- constructors ------------------------------------------------

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Labels":
        """Build labels from a boolean per-point mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 1:
            raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
        padded = np.concatenate(([False], mask, [False]))
        changes = np.flatnonzero(padded[1:] != padded[:-1])
        starts, ends = changes[0::2], changes[1::2]
        regions = tuple(
            AnomalyRegion(int(s), int(e)) for s, e in zip(starts, ends)
        )
        return cls(n=mask.size, regions=regions)

    @classmethod
    def from_points(cls, n: int, points: Iterable[int]) -> "Labels":
        """Build labels where each listed point is its own unit region."""
        regions = tuple(AnomalyRegion(int(p), int(p) + 1) for p in points)
        return cls(n=n, regions=regions)

    @classmethod
    def single(cls, n: int, start: int, end: int) -> "Labels":
        """Build labels holding exactly one region ``[start, end)``."""
        return cls(n=n, regions=(AnomalyRegion(start, end),))

    @classmethod
    def empty(cls, n: int) -> "Labels":
        """Build anomaly-free labels."""
        return cls(n=n, regions=())

    # -- views -------------------------------------------------------

    def to_mask(self) -> np.ndarray:
        """Boolean per-point mask of shape ``(n,)``."""
        mask = np.zeros(self.n, dtype=bool)
        for region in self.regions:
            mask[region.start : region.end] = True
        return mask

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def num_anomalous_points(self) -> int:
        return sum(region.length for region in self.regions)

    @property
    def anomaly_rate(self) -> float:
        """Fraction of points labeled anomalous."""
        return self.num_anomalous_points / self.n

    @property
    def rightmost(self) -> AnomalyRegion | None:
        """The region with the greatest end index, or None."""
        return self.regions[-1] if self.regions else None

    def covers(self, index: int, slop: int = 0) -> bool:
        """True if any (slop-widened) region contains ``index``."""
        return any(region.contains(index, slop) for region in self.regions)

    def nearest_region(self, index: int) -> AnomalyRegion | None:
        """Region minimizing distance to ``index``, or None if unlabeled."""
        if not self.regions:
            return None
        return min(self.regions, key=lambda region: region.distance_to(index))

    def restricted(self, start: int, end: int) -> "Labels":
        """Labels for the slice ``[start, end)``, indices re-based to 0."""
        if not 0 <= start < end <= self.n:
            raise ValueError(f"bad slice [{start}, {end}) for n={self.n}")
        regions = []
        for region in self.regions:
            lo = max(region.start, start)
            hi = min(region.end, end)
            if lo < hi:
                regions.append(AnomalyRegion(lo - start, hi - start))
        return Labels(n=end - start, regions=tuple(regions))

    def shifted(self, offset: int, n: int | None = None) -> "Labels":
        """Labels translated by ``offset`` into a series of length ``n``."""
        n = self.n if n is None else n
        regions = tuple(
            AnomalyRegion(region.start + offset, region.end + offset)
            for region in self.regions
        )
        return Labels(n=n, regions=regions)


@dataclass
class LabeledSeries:
    """A univariate series with ground truth and optional train prefix.

    ``values[:train_len]`` is the anomaly-free training prefix (0 when the
    benchmark provides no training split, as with Yahoo).  ``meta`` carries
    provenance such as the planted anomaly type or solvability family.
    """

    name: str
    values: np.ndarray
    labels: Labels
    train_len: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError(
                f"series must be 1-D, got shape {self.values.shape}"
            )
        if self.values.size != self.labels.n:
            raise ValueError(
                f"series length {self.values.size} != labels length "
                f"{self.labels.n}"
            )
        if not 0 <= self.train_len <= self.values.size:
            raise ValueError(f"bad train_len {self.train_len}")

    @property
    def n(self) -> int:
        return int(self.values.size)

    @property
    def train(self) -> np.ndarray:
        """The anomaly-free training prefix (may be empty)."""
        return self.values[: self.train_len]

    @property
    def test(self) -> np.ndarray:
        """The evaluation suffix ``values[train_len:]``."""
        return self.values[self.train_len :]

    @property
    def test_labels(self) -> Labels:
        """Labels restricted to the test region, re-based to 0."""
        return self.labels.restricted(self.train_len, self.n)

    def with_values(self, values: np.ndarray, suffix: str = "") -> "LabeledSeries":
        """Copy of this series with substituted values (same labels)."""
        return LabeledSeries(
            name=self.name + suffix,
            values=np.asarray(values, dtype=float),
            labels=self.labels,
            train_len=self.train_len,
            meta=dict(self.meta),
        )


class Archive(Mapping[str, LabeledSeries]):
    """An ordered, named collection of :class:`LabeledSeries`.

    Behaves as a read-only mapping from series name to series; also keeps
    archive-level metadata (e.g. which flaws the simulator planted).
    """

    def __init__(
        self,
        name: str,
        series: Sequence[LabeledSeries],
        meta: dict | None = None,
    ) -> None:
        self.name = name
        self.meta = dict(meta or {})
        self._series: dict[str, LabeledSeries] = {}
        for item in series:
            if item.name in self._series:
                raise ValueError(f"duplicate series name: {item.name}")
            self._series[item.name] = item

    def __getitem__(self, key: str) -> LabeledSeries:
        return self._series[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"Archive({self.name!r}, {len(self)} series)"

    @property
    def series(self) -> list[LabeledSeries]:
        """All series in insertion order."""
        return list(self._series.values())

    def subset(self, names: Iterable[str], name: str | None = None) -> "Archive":
        """New archive restricted to ``names`` (insertion order kept)."""
        wanted = set(names)
        kept = [s for s in self.series if s.name in wanted]
        return Archive(name or self.name, kept, meta=dict(self.meta))
