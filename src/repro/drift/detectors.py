"""Streaming concept-drift detectors.

The streaming stack (PRs 5–8) scores anomalies under the most
flattering assumption of all — stationarity.  These detectors watch the
*input distribution* of a stream and flag when it has changed, so refit
policies (:mod:`repro.drift.policies`) can react instead of running on
a fixed cadence.  Three classical families, all riding the trailing-
window primitives of :mod:`repro.stream.windows` and their shifted-sum
cancellation guard:

* :class:`PageHinkley` — Page's cumulative-deviation test (the same
  1957 lineage as the registry's ``cusum`` scorer), two-sided and
  self-normalizing: deviations are divided by the running std of the
  stream since the last (re)start, so thresholds are scale-free and a
  ``1e9 ± 1e-6`` stream behaves exactly like a unit-scale one.
* :class:`AdwinLite` — an ADWIN-style adaptive window over an
  exponential bucket histogram: O(log n) buckets of shifted
  (count, sum, sum-of-squares) triples, cut with the variance-aware
  Hoeffding bound from Bifet & Gavaldà's ADWIN2.  A cut *is* the drift
  signal, and dropping the stale buckets is the built-in recovery.
* :class:`ZShift` — a two-window Welch z-test: a recent
  :class:`~repro.stream.windows.TrailingStats` window against a lagged
  reference window (values age through a delay line into the
  reference), flagging mean shifts in standard-error units and variance
  shifts by ratio.

Contract, shared by all three and property-tested in
``tests/test_drift_detectors.py``:

* ``push(value) -> bool`` — one point in, one verdict out;
* ``update(values)`` is definitionally ``[push(v) for v in values]``,
  so decisions are invariant to chunk boundaries;
* a ``True`` verdict restarts the detector's baseline (the stream's
  new regime becomes normal), which also bounds the flag rate
  structurally: no detector can flag twice within its warm-up;
* ``reset()`` returns the detector to its freshly-constructed state;
* everything is sequential float arithmetic — deterministic to the bit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque

import numpy as np

from ..detectors.registry import DetectorSpec
from ..stream.windows import TrailingStats

__all__ = [
    "DriftDetector",
    "PageHinkley",
    "AdwinLite",
    "ZShift",
    "DRIFT_DETECTORS",
    "make_drift_detector",
]

_EPS = 1e-12


class DriftDetector(ABC):
    """Flag distribution change in a stream, one point at a time."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string; ``make_drift_detector`` parses it back."""

    @abstractmethod
    def reset(self) -> "DriftDetector":
        """Return to the freshly-constructed state."""

    @abstractmethod
    def push(self, value: float) -> bool:
        """Ingest one point; True when drift is flagged at this point."""

    def update(self, values: np.ndarray) -> np.ndarray:
        """Per-point verdicts for a batch — literally a loop of ``push``,
        which is what makes chunk-boundary invariance a non-theorem."""
        values = np.atleast_1d(np.asarray(values, dtype=float))
        flags = np.zeros(values.size, dtype=bool)
        for index, value in enumerate(values):
            flags[index] = self.push(float(value))
        return flags

    # -- snapshot support (repro.serve.state) -------------------------

    @abstractmethod
    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(scalars, arrays)`` capturing the mutable state bit-exactly."""

    @abstractmethod
    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state` on a same-parameter instance."""

    def __repr__(self) -> str:
        return f"<{self.spec}>"


class PageHinkley(DriftDetector):
    """Two-sided Page–Hinkley test on self-normalized deviations.

    Maintains the running mean/std of the stream since the last
    (re)start through shifted sums (the
    :class:`~repro.stream.windows.TrailingStats` cancellation guard,
    unbounded), standardizes each deviation by the running std, and
    accumulates the classic PH statistic on both sides.  Drift is
    flagged when the cumulative statistic leaves its historical extreme
    by more than ``threshold`` (in std units); ``delta`` is the usual
    magnitude allowance that drags the statistic back under
    stationarity.  Isolated spikes move the statistic once and are then
    absorbed into the running std, so the default threshold survives
    the archive's ±30σ one-point spikes without firing.
    """

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 50.0,
        min_count: int = 32,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if min_count < 2:
            raise ValueError(f"min_count must be >= 2, got {min_count}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_count = int(min_count)
        self.reset()

    @property
    def spec(self) -> str:
        return DetectorSpec.create(
            "page_hinkley",
            delta=self.delta,
            threshold=self.threshold,
            min_count=self.min_count,
        ).label

    def reset(self) -> "PageHinkley":
        self._count = 0
        self._shift: float | None = None
        self._sum = 0.0
        self._sum_sq = 0.0
        self._up = 0.0
        self._up_min = 0.0
        self._down = 0.0
        self._down_max = 0.0
        return self

    def push(self, value: float) -> bool:
        value = float(value)
        if self._shift is None:
            self._shift = value
        shifted = value - self._shift
        self._count += 1
        self._sum += shifted
        self._sum_sq += shifted * shifted
        mean = self._sum / self._count
        variance = max(self._sum_sq / self._count - mean * mean, 0.0)
        z = (shifted - mean) / (math.sqrt(variance) + _EPS)
        self._up += z - self.delta
        self._up_min = min(self._up_min, self._up)
        self._down += z + self.delta
        self._down_max = max(self._down_max, self._down)
        if self._count >= self.min_count and (
            self._up - self._up_min > self.threshold
            or self._down_max - self._down > self.threshold
        ):
            # the new regime becomes the baseline — restart everything
            self.reset()
            return True
        return False

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        return (
            {
                "count": self._count,
                "shift": self._shift,
                "sum": self._sum,
                "sum_sq": self._sum_sq,
                "up": self._up,
                "up_min": self._up_min,
                "down": self._down,
                "down_max": self._down_max,
            },
            {},
        )

    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        self._count = int(scalars["count"])
        self._shift = (
            None if scalars["shift"] is None else float(scalars["shift"])
        )
        self._sum = float(scalars["sum"])
        self._sum_sq = float(scalars["sum_sq"])
        self._up = float(scalars["up"])
        self._up_min = float(scalars["up_min"])
        self._down = float(scalars["down"])
        self._down_max = float(scalars["down_max"])


class AdwinLite(DriftDetector):
    """ADWIN-style adaptive window with the variance-aware cut bound.

    The window of recent points is summarized as an exponential bucket
    histogram — at most ``max_buckets`` buckets per power-of-two size,
    each a shifted ``(count, sum, sum_sq)`` triple, so memory is
    O(log n) however long the stream runs.  On every push the detector
    looks for a split of the window into old|new halves whose means
    differ by more than ADWIN2's bound

        eps = sqrt((2/m) σ²_W ln(2n/δ)) + (2/(3m)) ln(2n/δ)

    (``m`` the harmonic mean of the side lengths, ``σ²_W`` the window
    variance — the variance term is what keeps ±30σ one-point spikes
    from firing it).  A successful cut drops the oldest bucket, flags
    drift, and re-checks; the surviving window *is* the new baseline.
    """

    def __init__(
        self,
        delta: float = 0.002,
        max_buckets: int = 5,
        min_window: int = 32,
        min_side: int = 8,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        if min_side < 1:
            raise ValueError(f"min_side must be >= 1, got {min_side}")
        if min_window < 2 * min_side:
            raise ValueError(
                f"min_window must be >= 2 * min_side, got {min_window}"
            )
        self.delta = float(delta)
        self.max_buckets = int(max_buckets)
        self.min_window = int(min_window)
        self.min_side = int(min_side)
        self.reset()

    @property
    def spec(self) -> str:
        return DetectorSpec.create(
            "adwin",
            delta=self.delta,
            max_buckets=self.max_buckets,
            min_window=self.min_window,
            min_side=self.min_side,
        ).label

    def reset(self) -> "AdwinLite":
        self._shift: float | None = None
        # oldest-first [count, sum, sum_sq]; counts are powers of two,
        # non-increasing toward the tail (the newest, smallest buckets)
        self._buckets: list[list[float]] = []
        return self

    @property
    def width(self) -> int:
        """Points currently inside the adaptive window."""
        return int(sum(bucket[0] for bucket in self._buckets))

    def push(self, value: float) -> bool:
        value = float(value)
        if self._shift is None:
            self._shift = value
        shifted = value - self._shift
        self._buckets.append([1, shifted, shifted * shifted])
        self._compress()
        return self._detect()

    def _compress(self) -> None:
        buckets = self._buckets
        i = len(buckets) - 1
        while i >= 0:
            size = buckets[i][0]
            j = i
            while j >= 0 and buckets[j][0] == size:
                j -= 1
            if i - j > self.max_buckets:
                # merge the two oldest buckets of this size; the merged
                # bucket joins the next size up, which may now overflow
                first, second = buckets[j + 1], buckets[j + 2]
                buckets[j + 1 : j + 3] = [
                    [
                        first[0] + second[0],
                        first[1] + second[1],
                        first[2] + second[2],
                    ]
                ]
                i = j + 1
            else:
                i = j

    def _detect(self) -> bool:
        shrunk = False
        while len(self._buckets) > 1:
            total_n = 0.0
            total_sum = 0.0
            total_sq = 0.0
            for count, total, square in self._buckets:
                total_n += count
                total_sum += total
                total_sq += square
            if total_n < self.min_window:
                break
            mean_w = total_sum / total_n
            var_w = max(total_sq / total_n - mean_w * mean_w, 0.0)
            log_term = math.log(2.0 * total_n / self.delta)
            cut = False
            n0 = s0 = 0.0
            for count, total, _ in self._buckets[:-1]:
                n0 += count
                s0 += total
                n1 = total_n - n0
                if n0 < self.min_side or n1 < self.min_side:
                    continue
                harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
                eps = math.sqrt(
                    (2.0 / harmonic) * var_w * log_term
                ) + (2.0 / (3.0 * harmonic)) * log_term
                if abs(s0 / n0 - (total_sum - s0) / n1) > eps:
                    self._buckets.pop(0)
                    shrunk = cut = True
                    break
            if not cut:
                break
        return shrunk

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        return (
            {"shift": self._shift},
            {
                "bucket_counts": np.asarray(
                    [bucket[0] for bucket in self._buckets], dtype=np.int64
                ),
                "bucket_sums": np.asarray(
                    [bucket[1] for bucket in self._buckets], dtype=float
                ),
                "bucket_sum_sqs": np.asarray(
                    [bucket[2] for bucket in self._buckets], dtype=float
                ),
            },
        )

    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        self._shift = (
            None if scalars["shift"] is None else float(scalars["shift"])
        )
        self._buckets = [
            [int(count), float(total), float(square)]
            for count, total, square in zip(
                arrays["bucket_counts"],
                arrays["bucket_sums"],
                arrays["bucket_sum_sqs"],
            )
        ]


class ZShift(DriftDetector):
    """Two-window Welch z-test: recent window vs lagged reference.

    Arriving values enter a delay line of length ``recent`` (whose
    contents are exactly the recent :class:`~repro.stream.windows.
    TrailingStats` window); values aging out of it feed the reference
    window, so the two never overlap.  Once both windows are full the
    detector flags when the window means differ by more than
    ``threshold`` standard errors (Welch's unequal-variance form —
    scale-free by construction) or when the window stds differ by more
    than a factor of ``var_ratio``.  The default ratio is high enough
    that one ±30σ spike (which inflates a 48-point window's std about
    4.4×) does not fire it; tighter ratios are a deliberate sensitivity
    choice for variance-drift-heavy deployments.  A flag restarts both
    windows, so flags are structurally at least
    ``recent + reference`` points apart.
    """

    def __init__(
        self,
        recent: int = 48,
        reference: int = 192,
        threshold: float = 4.0,
        var_ratio: float = 6.0,
    ) -> None:
        if recent < 2:
            raise ValueError(f"recent must be >= 2, got {recent}")
        if reference < recent:
            raise ValueError(
                f"reference must be >= recent, got {reference} < {recent}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if var_ratio <= 1:
            raise ValueError(f"var_ratio must be > 1, got {var_ratio}")
        self.recent = int(recent)
        self.reference = int(reference)
        self.threshold = float(threshold)
        self.var_ratio = float(var_ratio)
        self.reset()

    @property
    def spec(self) -> str:
        return DetectorSpec.create(
            "zshift",
            recent=self.recent,
            reference=self.reference,
            threshold=self.threshold,
            var_ratio=self.var_ratio,
        ).label

    def reset(self) -> "ZShift":
        self._delay: deque[float] = deque()
        self._recent = TrailingStats(self.recent)
        self._reference = TrailingStats(self.reference)
        self._recent_mean = 0.0
        self._recent_std = 0.0
        self._ref_mean = 0.0
        self._ref_std = 0.0
        return self

    def push(self, value: float) -> bool:
        value = float(value)
        evicted = None
        if len(self._delay) == self.recent:
            evicted = self._delay.popleft()
        self._delay.append(value)
        self._recent_mean, self._recent_std = self._recent.push(value)
        if evicted is not None:
            self._ref_mean, self._ref_std = self._reference.push(evicted)
        if self._reference.count < self.reference:
            return False
        delta_mean = self._recent_mean - self._ref_mean
        stderr = math.sqrt(
            self._ref_std**2 / self.reference
            + self._recent_std**2 / self.recent
        )
        if stderr > 0:
            mean_shift = abs(delta_mean) > self.threshold * stderr
        else:
            mean_shift = delta_mean != 0.0
        var_shift = (
            self._recent_std > self.var_ratio * self._ref_std
            or self._ref_std > self.var_ratio * self._recent_std
        )
        if mean_shift or var_shift:
            self.reset()
            return True
        return False

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        def stats_state(stats: TrailingStats, prefix: str):
            return (
                {
                    f"{prefix}_shift": stats._shift,
                    f"{prefix}_sum": stats._sum,
                    f"{prefix}_sum_sq": stats._sum_sq,
                },
                np.asarray(stats._window, dtype=float),
            )

        recent_scalars, recent_window = stats_state(self._recent, "recent")
        ref_scalars, ref_window = stats_state(self._reference, "reference")
        scalars = {
            **recent_scalars,
            **ref_scalars,
            "recent_mean": self._recent_mean,
            "recent_std": self._recent_std,
            "ref_mean": self._ref_mean,
            "ref_std": self._ref_std,
        }
        arrays = {
            "delay": np.asarray(self._delay, dtype=float),
            "recent_window": recent_window,
            "reference_window": ref_window,
        }
        return scalars, arrays

    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        def load_stats(stats: TrailingStats, prefix: str, window) -> None:
            shift = scalars[f"{prefix}_shift"]
            stats._shift = None if shift is None else float(shift)
            stats._sum = float(scalars[f"{prefix}_sum"])
            stats._sum_sq = float(scalars[f"{prefix}_sum_sq"])
            stats._window = deque(float(value) for value in window)

        self._delay = deque(float(value) for value in arrays["delay"])
        load_stats(self._recent, "recent", arrays["recent_window"])
        load_stats(self._reference, "reference", arrays["reference_window"])
        self._recent_mean = float(scalars["recent_mean"])
        self._recent_std = float(scalars["recent_std"])
        self._ref_mean = float(scalars["ref_mean"])
        self._ref_std = float(scalars["ref_std"])


#: name → class, the drift counterpart of the detector registry
DRIFT_DETECTORS: dict[str, type[DriftDetector]] = {
    "page_hinkley": PageHinkley,
    "adwin": AdwinLite,
    "zshift": ZShift,
}


def make_drift_detector(spec: "str | DetectorSpec | DriftDetector") -> DriftDetector:
    """Build a drift detector from a spec string, spec, or instance.

    Spec syntax is the registry's: ``"adwin"``, ``"zshift(recent=64,
    threshold=3.5)"``, ...  An instance passes through unchanged.
    """
    if isinstance(spec, DriftDetector):
        return spec
    if isinstance(spec, str):
        spec = DetectorSpec.parse(spec)
    if not isinstance(spec, DetectorSpec):
        raise TypeError(
            f"cannot build a drift detector from {spec!r}; expected a "
            f"spec string, DetectorSpec or DriftDetector"
        )
    try:
        factory = DRIFT_DETECTORS[spec.name]
    except KeyError:
        raise ValueError(
            f"unknown drift detector {spec.name!r}; available: "
            f"{sorted(DRIFT_DETECTORS)}"
        ) from None
    return factory(**dict(spec.params))
