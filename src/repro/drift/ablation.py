"""The drift ablation: refit policies as a measured trade-off.

"Adapts fast" and "false-alarms under drift" are marketing words until
they are measured on the same axis.  This ablation replays the drift
scenarios (:mod:`repro.drift.scenarios`) through one fit-dependent
detector under a line-up of refit policies and reports, per policy:

* **delay-aware accuracy** — the replay engine's ``delay_correct``
  (running argmax committed near the onset, within the latency
  budget), the number that penalizes adapting *late*;
* **median commit delay** and the NAB-style windowed score — the
  smooth versions of the same axis;
* **refit counts** — what the policy *spent*;
* **stationary triggers/refits** — what the policy does when nothing
  is happening: the false-alarm axis, probed on drift-free control
  series.

The default detector is raw-distance kNN (``znorm=False``): its fitted
reference windows go stale the moment the regime changes, so *when* to
refit is exactly what separates the policies — a trailing one-liner
would adapt on its own and measure nothing.  The bench ``drift``
section records this table as BENCH_9's trajectory point, with the
acceptance check that a triggered policy beats the fixed cadence on
delay-aware accuracy while keeping stationary false alarms bounded.
"""

from __future__ import annotations

import numpy as np

from ..detectors.registry import DetectorSpec
from ..stream.replay import ReplayTrace, replay
from ..stream.scoreboard import nab_windowed_score
from .policies import parse_policy
from .scenarios import DriftSimConfig, make_drift_archive, make_stationary_series

__all__ = [
    "DEFAULT_ABLATION_DETECTOR",
    "DEFAULT_ABLATION_POLICIES",
    "drift_ablation",
    "format_drift_ablation",
]

#: raw-distance kNN: fitted state that genuinely goes stale under drift
DEFAULT_ABLATION_DETECTOR = "knn(w=100,znorm=False,train_stride=4)"

#: the trigger detector for the default line-up: a two-window z-test
#: whose recent window spans exactly one scenario period, so the sine
#: seasonality cancels out of both window means (a shorter window
#: aliases the seasonal mean into a permanent false "drift")
_TRIGGER = "zshift(recent=120,reference=360,threshold=4.0,var_ratio=2.0)"

#: policy line-up: no adaptation, the legacy cadence, drift-triggered,
#: and triggered-with-fallback.  ``None`` means never refit.  The
#: triggered policies consolidate 250 points after a trigger (settle):
#: the first refit lands mid-transition with only ~a dozen new-regime
#: points in the history, and kNN scores only collapse once a fit has
#: seen at least one full window (w=100) of the settled regime.
DEFAULT_ABLATION_POLICIES: tuple[str | None, ...] = (
    None,
    "fixed(every=800)",
    f"drift(on='{_TRIGGER}',cooldown=150,settle=250)",
    f"hybrid(on='{_TRIGGER}',every=800,cooldown=150,settle=250)",
)


def _policy_key(policy: str | None) -> str:
    if policy is None:
        return "none"
    return DetectorSpec.parse(policy).name


def _policy_row(traces: "list[ReplayTrace]") -> dict:
    delays = [
        trace.delay
        for trace in traces
        if trace.correct and trace.delay is not None
    ]
    windowed = [
        score
        for score in (nab_windowed_score(trace) for trace in traces)
        if score is not None
    ]
    return {
        "cells": len(traces),
        "correct": sum(trace.correct for trace in traces),
        "delay_correct": sum(trace.delay_correct for trace in traces),
        "delay_accuracy": float(
            np.mean([trace.delay_correct for trace in traces])
        ),
        "median_delay": float(np.median(delays)) if delays else None,
        "nab_windowed": float(np.mean(windowed)) if windowed else None,
        "refits": int(sum(trace.refits for trace in traces)),
        "triggers": int(sum(trace.triggers for trace in traces)),
    }


def drift_ablation(
    detector: str = DEFAULT_ABLATION_DETECTOR,
    policies: "tuple[str | None, ...]" = DEFAULT_ABLATION_POLICIES,
    config: DriftSimConfig = DriftSimConfig(),
    *,
    batch_size: int = 8,
    max_delay: int = 250,
    window: int | None = None,
    slop: int = 100,
) -> dict:
    """Replay the drift scenarios under every policy; see module docs.

    Deterministic for fixed arguments (every random draw flows through
    :func:`repro.rng.rng_for` and the replay engine is deterministic),
    so the returned mapping serializes byte-identically across runs.
    """
    for policy in policies:
        parse_policy(policy)  # fail fast before any replay work
    archive = make_drift_archive(config)
    controls = [
        make_stationary_series(config, index=index)
        for index in range(config.stationary)
    ]
    rows: dict[str, dict] = {}
    for policy in policies:
        key = _policy_key(policy)
        if key in rows:
            raise ValueError(f"duplicate policy kind {key!r} in line-up")
        label = f"{detector}+{key}"
        drift_traces = [
            replay(
                series,
                detector,
                batch_size=batch_size,
                max_delay=max_delay,
                slop=slop,
                window=window,
                refit_policy=policy,
                label=label,
            )
            for series in archive.series
        ]
        control_traces = [
            replay(
                series,
                detector,
                batch_size=batch_size,
                max_delay=max_delay,
                slop=slop,
                window=window,
                refit_policy=policy,
                label=label,
            )
            for series in controls
        ]
        row = _policy_row(drift_traces)
        row["policy"] = policy
        row["stationary"] = {
            "series": len(control_traces),
            "refits": int(sum(trace.refits for trace in control_traces)),
            "triggers": int(sum(trace.triggers for trace in control_traces)),
        }
        rows[key] = row
    return {
        "detector": detector,
        "batch_size": int(batch_size),
        "max_delay": int(max_delay),
        "window": None if window is None else int(window),
        "slop": int(slop),
        "scenarios": {
            "n": int(config.n),
            "per_kind": int(config.per_kind),
            "stationary": int(config.stationary),
            "seed": int(config.seed),
        },
        "policies": rows,
    }


def format_drift_ablation(result: dict) -> str:
    """Human-readable trade-off table for one ablation result."""
    lines = [
        f"drift ablation: {result['detector']}, batch size "
        f"{result['batch_size']}, max delay {result['max_delay']}",
        "",
        f"  {'policy':<8} {'delay-acc':>9} {'med delay':>10} "
        f"{'nab-win':>8} {'refits':>7} {'stat refits':>12} "
        f"{'stat triggers':>14}",
    ]
    for key, row in result["policies"].items():
        med = (
            "-"
            if row["median_delay"] is None
            else f"{row['median_delay']:.0f}"
        )
        nab = (
            "-"
            if row["nab_windowed"] is None
            else f"{row['nab_windowed']:.1f}"
        )
        stationary = row["stationary"]
        lines.append(
            f"  {key:<8} {row['delay_accuracy']:>8.1%} {med:>10} {nab:>8} "
            f"{row['refits']:>7} {stationary['refits']:>12} "
            f"{stationary['triggers']:>14}"
        )
    return "\n".join(lines)
