"""Refit policies: *when* a streaming adapter refits its detector.

PR 5's ``refit_every`` hard-wired one answer — a fixed cadence — into
:class:`~repro.stream.adapters.BatchStreamingAdapter`.  This module
lifts the decision into a :class:`RefitPolicy` object the adapter
consults once per arriving micro-batch, before scoring:

* :class:`FixedCadence` — the legacy behavior, extracted verbatim:
  refit once at least ``every`` points have arrived since the last fit.
  ``refit_every=k`` everywhere in the stack is now sugar for this
  policy, and the replay parity tests hold the two byte-identical.
* :class:`DriftTriggered` — refit when a
  :class:`~repro.drift.detectors.DriftDetector` flags the input
  distribution, rate-limited by ``cooldown`` points between refits.
* :class:`Hybrid` — drift-triggered with a fixed-cadence fallback:
  react within ``cooldown`` of a flag, but never go longer than
  ``every`` points without a refit (regime changes the input-space
  detector cannot see — e.g. a pure period change — still get the
  scheduled recovery).

Policies are stateful and deterministic; their state round-trips
through serve snapshots bit-exactly (:meth:`RefitPolicy.state` /
:meth:`RefitPolicy.load_state`), and ``triggers``/``refits`` counters
feed the replay traces and the drift ablation.  :func:`parse_policy`
gives them the registry's spec-string syntax so they travel through
the CLI and the serve JSON API as plain strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..detectors.registry import DetectorSpec
from ..obs import get_registry
from .detectors import DRIFT_DETECTORS, DriftDetector, make_drift_detector

__all__ = [
    "RefitPolicy",
    "FixedCadence",
    "DriftTriggered",
    "Hybrid",
    "parse_policy",
    "validate_stream_options",
]


def _check_cadence(name: str, value, *, minimum: int) -> int:
    """A strict integer cadence: bools, floats and strings are rejected
    here, at the boundary, instead of failing later inside a worker."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"{name} must be an integer, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


class RefitPolicy(ABC):
    """Decide, per arriving micro-batch, whether to refit now.

    :meth:`observe` is called by the adapter once per ``update`` with
    the newly arrived values, *before* scoring; returning True makes
    the adapter refit its wrapped detector on everything seen so far.
    ``triggers`` counts drift flags seen, ``refits`` the True verdicts
    returned — both survive snapshots and land in replay traces.
    """

    def __init__(self) -> None:
        self._since = 0
        self.triggers = 0
        self.refits = 0

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string; :func:`parse_policy` parses it back."""

    @abstractmethod
    def observe(self, values: np.ndarray) -> bool:
        """Ingest one arriving micro-batch; True means refit now."""

    def reset(self) -> "RefitPolicy":
        """Back to the freshly-constructed state (counters included)."""
        self._since = 0
        self.triggers = 0
        self.refits = 0
        detector = getattr(self, "detector", None)
        if detector is not None:
            detector.reset()
        return self

    # -- snapshot support (repro.serve.state) -------------------------

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(scalars, arrays)`` capturing the mutable state bit-exactly."""
        scalars = {
            "since": self._since,
            "triggers": self.triggers,
            "refits": self.refits,
        }
        arrays: dict[str, np.ndarray] = {}
        detector = getattr(self, "detector", None)
        if detector is not None:
            d_scalars, d_arrays = detector.state()
            scalars.update(
                {f"detector_{key}": value for key, value in d_scalars.items()}
            )
            arrays.update(
                {f"detector_{key}": value for key, value in d_arrays.items()}
            )
        return scalars, arrays

    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state` on a same-spec instance."""
        self._since = int(scalars["since"])
        self.triggers = int(scalars["triggers"])
        self.refits = int(scalars["refits"])
        detector = getattr(self, "detector", None)
        if detector is not None:
            prefix = "detector_"
            detector.load_state(
                {
                    key[len(prefix) :]: value
                    for key, value in scalars.items()
                    if key.startswith(prefix)
                },
                {
                    key[len(prefix) :]: value
                    for key, value in arrays.items()
                    if key.startswith(prefix)
                },
            )

    def __repr__(self) -> str:
        return f"<{self.spec}>"


class FixedCadence(RefitPolicy):
    """Refit once at least ``every`` points arrived since the last fit.

    This is PR 5's ``refit_every`` counter, moved here unchanged —
    same increment, same ``>=`` comparison, same reset-to-zero — so a
    ``refit_every=k`` stream and a ``fixed(every=k)`` stream replay
    byte-identically (``tests/test_drift_policies.py`` holds the line).
    """

    def __init__(self, every: int) -> None:
        super().__init__()
        self.every = _check_cadence("every", every, minimum=1)

    @property
    def spec(self) -> str:
        return DetectorSpec.create("fixed", every=self.every).label

    def observe(self, values: np.ndarray) -> bool:
        self._since += int(np.asarray(values).size)
        if self._since >= self.every:
            self._since = 0
            self.refits += 1
            return True
        return False


class _Triggered(RefitPolicy):
    """Shared flag → refit machinery for the drift-aware policies.

    Three refit sources, checked in priority order on every batch:

    1. **trigger** — the drift detector flagged and at least
       ``cooldown`` points arrived since the last refit;
    2. **settle** — exactly ``settle`` points after a triggered refit,
       one consolidation refit.  A triggered refit usually lands
       mid-transition, when the history holds only a handful of
       new-regime points; detectors whose fitted state is a reference
       *sample* (kNN windows, learned baselines) stay half-stale until
       a later fit sees the settled regime.  ``settle=0`` disables it;
    3. **cadence** — the subclass's scheduled fallback, if any.

    Flags during cooldown still restart the drift detector's baseline
    (its own flag semantics); they just don't pay for another refit.
    """

    def __init__(
        self,
        on: "str | DetectorSpec | DriftDetector",
        cooldown: int,
        settle: int,
    ) -> None:
        super().__init__()
        self.detector = make_drift_detector(on)
        self.cooldown = _check_cadence("cooldown", cooldown, minimum=0)
        self.settle = _check_cadence("settle", settle, minimum=0)
        self._settle_due: int | None = None

    def reset(self) -> "RefitPolicy":
        super().reset()
        self._settle_due = None
        return self

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        scalars, arrays = super().state()
        scalars["settle_due"] = self._settle_due
        return scalars, arrays

    def load_state(self, scalars: dict, arrays: dict[str, np.ndarray]) -> None:
        super().load_state(scalars, arrays)
        due = scalars.get("settle_due")
        self._settle_due = None if due is None else int(due)

    def _cadence_due(self) -> bool:
        return False

    def observe(self, values: np.ndarray) -> bool:
        size = int(np.asarray(values).size)
        self._since += size
        if self._settle_due is not None:
            self._settle_due -= size
        flagged = int(np.count_nonzero(self.detector.update(values)))
        if flagged:
            self.triggers += flagged
            get_registry().counter(
                "drift_triggers", detector=self.detector.name
            ).inc(flagged)
        if flagged and self._since >= self.cooldown:
            self._since = 0
            self.refits += 1
            self._settle_due = self.settle if self.settle > 0 else None
            return True
        if self._settle_due is not None and self._settle_due <= 0:
            self._settle_due = None
            self._since = 0
            self.refits += 1
            return True
        if self._cadence_due():
            self._since = 0
            self.refits += 1
            return True
        return False


class DriftTriggered(_Triggered):
    """Refit when the drift detector flags, at most every ``cooldown``.

    ``on`` names the drift detector (spec string, spec, or instance);
    every flagged point counts as a trigger, and a refit fires when a
    batch contained a flag and at least ``cooldown`` points arrived
    since the last refit, plus one consolidation refit ``settle``
    points later (see :class:`_Triggered`; ``settle=0`` disables it).
    """

    def __init__(
        self,
        on: "str | DetectorSpec | DriftDetector" = "page_hinkley",
        cooldown: int = 0,
        settle: int = 0,
    ) -> None:
        super().__init__(on, cooldown, settle)

    @property
    def spec(self) -> str:
        return DetectorSpec.create(
            "drift",
            on=self.detector.spec,
            cooldown=self.cooldown,
            settle=self.settle,
        ).label


class Hybrid(_Triggered):
    """Drift-triggered refits with a fixed-cadence safety net.

    React within ``cooldown`` points of a drift flag (consolidating
    ``settle`` points later, like :class:`DriftTriggered`), and refit
    on the ``every`` cadence regardless — the fallback covers regime
    changes the input-space drift detector is blind to (a pure period
    change moves neither mean nor variance), at fixed-cadence cost only
    when the detector stays silent.
    """

    def __init__(
        self,
        on: "str | DetectorSpec | DriftDetector" = "page_hinkley",
        every: int = 1000,
        cooldown: int = 0,
        settle: int = 0,
    ) -> None:
        super().__init__(on, cooldown, settle)
        self.every = _check_cadence("every", every, minimum=1)

    @property
    def spec(self) -> str:
        return DetectorSpec.create(
            "hybrid",
            on=self.detector.spec,
            every=self.every,
            cooldown=self.cooldown,
            settle=self.settle,
        ).label

    def _cadence_due(self) -> bool:
        return self._since >= self.every


_POLICIES = {"fixed": FixedCadence, "drift": DriftTriggered, "hybrid": Hybrid}


def parse_policy(
    policy: "str | DetectorSpec | RefitPolicy | None",
) -> RefitPolicy | None:
    """Build a refit policy from its spec string.

    Syntax is the registry's spec syntax.  ``fixed(every=500)``,
    ``drift(on='zshift(recent=64)', cooldown=200)`` and
    ``hybrid(on='adwin', every=2000, cooldown=250)`` name the policies
    directly; a bare drift-detector spec — ``page_hinkley(threshold=30)``
    or ``zshift`` — is shorthand for ``drift(on=...)`` with an optional
    ``cooldown`` parameter peeled off for the policy.  ``None`` and
    ready-made :class:`RefitPolicy` instances pass through.
    """
    if policy is None or isinstance(policy, RefitPolicy):
        return policy
    if isinstance(policy, str):
        policy = DetectorSpec.parse(policy)
    if not isinstance(policy, DetectorSpec):
        raise ValueError(
            f"cannot build a refit policy from {policy!r}; expected a "
            f"spec string like 'fixed(every=500)'"
        )
    params = dict(policy.params)
    try:
        if policy.name in _POLICIES:
            return _POLICIES[policy.name](**params)
        if policy.name in DRIFT_DETECTORS:
            cooldown = params.pop("cooldown", 0)
            settle = params.pop("settle", 0)
            detector = DRIFT_DETECTORS[policy.name](**params)
            return DriftTriggered(on=detector, cooldown=cooldown, settle=settle)
    except TypeError as error:
        raise ValueError(f"bad refit policy {policy.label!r}: {error}") from None
    raise ValueError(
        f"unknown refit policy {policy.name!r}; available: "
        f"{sorted(_POLICIES)} or a drift detector "
        f"{sorted(DRIFT_DETECTORS)} as shorthand for drift(on=...)"
    )


def validate_stream_options(
    *,
    window=None,
    refit_every=None,
    refit_policy=None,
) -> None:
    """Reject bad adaptation options at an API boundary.

    The serve cluster and the CLI both call this before any work is
    queued, so ``refit_every=0``, a float window, or a misspelled
    policy spec fail with a clean ``ValueError`` (→ exit 2 / HTTP 400)
    instead of a deferred failure surfacing from inside a shard worker.
    """
    if window is not None:
        _check_cadence("window", window, minimum=2)
    if refit_every is not None:
        _check_cadence("refit_every", refit_every, minimum=1)
    if refit_policy is not None:
        if refit_every is not None:
            raise ValueError(
                "refit_every and refit_policy are mutually exclusive; "
                "refit_every=k is shorthand for refit_policy="
                "'fixed(every=k)'"
            )
        if not isinstance(refit_policy, (str, DetectorSpec, RefitPolicy)):
            raise ValueError(
                f"refit_policy must be a policy spec string, got "
                f"{refit_policy!r} ({type(refit_policy).__name__})"
            )
        parse_policy(refit_policy)
