"""Synthetic concept-drift scenarios for the streaming stack.

The dataset simulators under :mod:`repro.datasets` plant *anomalies* —
short excursions from an otherwise stationary process.  These scenarios
plant *regime changes*: from the onset to the end of the series the
process itself is different.  Four canonical kinds:

* ``step`` — the mean jumps by ``magnitude`` and stays there;
* ``ramp`` — the mean drifts linearly to ``magnitude`` over
  ``ramp_len`` points, then holds (slow drift, the hard case for
  cumulative tests);
* ``variance`` — the noise scale multiplies by ``variance_factor``
  (mean-based drift detectors are blind to this one);
* ``period`` — the base oscillation's period changes
  (phase-continuously), moving neither mean nor variance — invisible
  to *every* input-space drift detector here, which is exactly why
  hybrid policies keep a scheduled fallback.

Each series is a noisy sine with an anomaly-free training prefix and a
single labeled region ``[onset, onset + label_width)`` marking where
the regime change begins, so the replay engine's delay-aware UCR
protocol applies unchanged: a detector is right when its running
argmax commits near the onset, and ``delay`` measures how long after
the onset it took.  Determinism flows from :func:`repro.rng.rng_for`
like every other simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import rng_for
from ..types import Archive, LabeledSeries, Labels

__all__ = [
    "DRIFT_KINDS",
    "DriftSimConfig",
    "make_drift_series",
    "make_stationary_series",
    "make_drift_archive",
]

DRIFT_KINDS = ("step", "ramp", "variance", "period")


@dataclass(frozen=True)
class DriftSimConfig:
    seed: int = 29
    n: int = 3000
    train_fraction: float = 0.3
    per_kind: int = 2  # drift series per kind
    stationary: int = 3  # drift-free control series
    amp: float = 0.6  # base sine amplitude
    noise: float = 0.25  # base gaussian noise scale
    period: int = 120  # base sine period
    magnitude: float = 3.0  # step / ramp mean shift
    variance_factor: float = 5.0  # noise multiplier after onset
    period_factor: float = 0.6  # period multiplier after onset
    ramp_len: int = 320  # points to reach full ramp magnitude
    label_width: int = 160  # labeled onset region length


def _base(
    rng: np.random.Generator, config: DriftSimConfig, periods: np.ndarray
) -> np.ndarray:
    """Phase-continuous noisy sine with a per-point period schedule."""
    phase = 2.0 * np.pi * np.cumsum(1.0 / periods)
    phase += rng.uniform(0.0, 2.0 * np.pi)
    return config.amp * np.sin(phase)


def make_drift_series(
    kind: str, config: DriftSimConfig = DriftSimConfig(), *, index: int = 0
) -> LabeledSeries:
    """One drift scenario of the given kind, deterministic in (seed, index)."""
    if kind not in DRIFT_KINDS:
        raise ValueError(f"unknown drift kind {kind!r}; expected {DRIFT_KINDS}")
    rng = rng_for(config.seed, "drift", kind, index)
    n = int(config.n)
    train_len = int(config.train_fraction * n)
    margin = max(2 * config.period, config.ramp_len)
    lo = train_len + margin
    hi = n - config.label_width - margin
    if lo >= hi:
        raise ValueError(
            f"n={n} too short for a drift onset between train and tail"
        )
    onset = int(rng.integers(lo, hi))

    periods = np.full(n, float(config.period))
    if kind == "period":
        periods[onset:] = max(2.0, config.period * config.period_factor)
    noise_scale = np.full(n, config.noise)
    if kind == "variance":
        noise_scale[onset:] = config.noise * config.variance_factor
    values = _base(rng, config, periods) + rng.normal(0.0, 1.0, n) * noise_scale
    if kind == "step":
        values[onset:] += config.magnitude
    elif kind == "ramp":
        rise = np.minimum(
            np.arange(n - onset) / float(config.ramp_len), 1.0
        )
        values[onset:] += config.magnitude * rise

    return LabeledSeries(
        name=f"drift_{kind}_{index:02d}",
        values=values,
        labels=Labels.single(n, onset, onset + config.label_width),
        train_len=train_len,
        meta={"dataset": "drift", "kind": kind, "onset": onset},
    )


def make_stationary_series(
    config: DriftSimConfig = DriftSimConfig(), *, index: int = 0
) -> LabeledSeries:
    """A drift-free control series (no labels): the false-alarm probe."""
    rng = rng_for(config.seed, "drift", "stationary", index)
    n = int(config.n)
    periods = np.full(n, float(config.period))
    values = (
        _base(rng, config, periods)
        + rng.normal(0.0, 1.0, n) * config.noise
    )
    return LabeledSeries(
        name=f"drift_stationary_{index:02d}",
        values=values,
        labels=Labels.empty(n),
        train_len=int(config.train_fraction * n),
        meta={"dataset": "drift", "kind": "stationary"},
    )


def make_drift_archive(config: DriftSimConfig = DriftSimConfig()) -> Archive:
    """All drift kinds × ``per_kind`` indices, in deterministic order.

    Stationary controls are *not* included (they have no labeled
    anomaly, and the replay grid scores against labels); the ablation
    replays them separately via :func:`make_stationary_series`.
    """
    series = [
        make_drift_series(kind, config, index=index)
        for kind in DRIFT_KINDS
        for index in range(config.per_kind)
    ]
    return Archive(
        "drift-scenarios",
        series,
        meta={"benchmark": "drift-scenarios", "seed": config.seed},
    )
