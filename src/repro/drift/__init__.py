"""Concept drift: detection, adaptive refit policies, scenarios.

The streaming stack's answer to non-stationarity.  Drift *detectors*
(:mod:`~repro.drift.detectors`) watch a stream's input distribution and
flag regime changes; refit *policies* (:mod:`~repro.drift.policies`)
turn those flags — or a fixed cadence, or both — into the refit
decisions :class:`~repro.stream.adapters.BatchStreamingAdapter`
executes; drift *scenarios* (:mod:`~repro.drift.scenarios`) plant
step/ramp/variance/period regime changes to measure it all against;
and the *ablation* (:mod:`~repro.drift.ablation`) reports the
adapts-fast vs false-alarms trade-off on the replay engine's
delay-aware axis.
"""

from .ablation import (
    DEFAULT_ABLATION_DETECTOR,
    DEFAULT_ABLATION_POLICIES,
    drift_ablation,
    format_drift_ablation,
)
from .detectors import (
    DRIFT_DETECTORS,
    AdwinLite,
    DriftDetector,
    PageHinkley,
    ZShift,
    make_drift_detector,
)
from .policies import (
    DriftTriggered,
    FixedCadence,
    Hybrid,
    RefitPolicy,
    parse_policy,
    validate_stream_options,
)
from .scenarios import (
    DRIFT_KINDS,
    DriftSimConfig,
    make_drift_archive,
    make_drift_series,
    make_stationary_series,
)

__all__ = [
    "DriftDetector",
    "PageHinkley",
    "AdwinLite",
    "ZShift",
    "DRIFT_DETECTORS",
    "make_drift_detector",
    "RefitPolicy",
    "FixedCadence",
    "DriftTriggered",
    "Hybrid",
    "parse_policy",
    "validate_stream_options",
    "DRIFT_KINDS",
    "DriftSimConfig",
    "make_drift_series",
    "make_stationary_series",
    "make_drift_archive",
    "drift_ablation",
    "format_drift_ablation",
    "DEFAULT_ABLATION_DETECTOR",
    "DEFAULT_ABLATION_POLICIES",
]
