"""UCR Anomaly Archive scoring (paper §2.3 and §3).

The paper argues the ideal test series contains *exactly one* anomaly and
the detector should "just return the most likely location of the
anomaly", making evaluation binary and archive-level results a simple,
interpretable accuracy.

The accepted answer range gets a little "slop" (§3.1: "the scoring
functions typically have a little play to avoid the brittleness of
requiring spurious precision").  The UCR archive convention is ±100
points or the anomaly length, whichever is larger.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..types import Archive, LabeledSeries

__all__ = ["ucr_slop", "ucr_correct", "UcrOutcome", "UcrSummary", "score_archive"]


def ucr_slop(series: LabeledSeries, minimum: int = 100) -> int:
    """Allowed distance from the labeled region for a correct answer."""
    region = series.labels.rightmost
    if region is None:
        raise ValueError(f"{series.name}: series has no labeled anomaly")
    return max(minimum, region.length)


def ucr_correct(
    series: LabeledSeries, location: int, minimum_slop: int = 100
) -> bool:
    """True if ``location`` falls in the labeled region ± slop."""
    if series.labels.num_regions != 1:
        raise ValueError(
            f"{series.name}: UCR scoring requires exactly one labeled "
            f"anomaly, found {series.labels.num_regions}"
        )
    region = series.labels.regions[0]
    return region.contains(int(location), slop=ucr_slop(series, minimum_slop))


@dataclass(frozen=True)
class UcrOutcome:
    """Per-dataset outcome: where the detector pointed and if it was right."""

    name: str
    location: int
    correct: bool
    region_start: int
    region_end: int


@dataclass
class UcrSummary:
    """Archive-level aggregate: the paper's 'simple accuracy'."""

    outcomes: list[UcrOutcome]

    @property
    def num_correct(self) -> int:
        return sum(outcome.correct for outcome in self.outcomes)

    @property
    def accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.num_correct / len(self.outcomes)

    def format(self) -> str:
        lines = [
            f"{'dataset':<42}{'predicted':>10}{'truth':>16}{'ok':>4}"
        ]
        for outcome in self.outcomes:
            truth = f"[{outcome.region_start},{outcome.region_end})"
            mark = "yes" if outcome.correct else "NO"
            lines.append(
                f"{outcome.name:<42}{outcome.location:>10}{truth:>16}{mark:>4}"
            )
        lines.append(
            f"accuracy: {self.num_correct}/{len(self.outcomes)}"
            f" = {self.accuracy:.1%}"
        )
        return "\n".join(lines)


def score_archive(
    archive: Archive,
    locate=None,
    minimum_slop: int = 100,
    *,
    locations: Mapping[str, int] | None = None,
) -> UcrSummary:
    """Score every dataset and aggregate.

    Either run ``locate(series) -> int`` on each series, or — when the
    evaluation engine (:mod:`repro.runner`) owns execution — pass the
    precomputed ``locations`` mapping series name to predicted index.
    Indices are in the *full-series* coordinate system; ``locate``
    receives the full :class:`LabeledSeries` so it can use the training
    prefix.
    """
    if (locate is None) == (locations is None):
        raise ValueError("pass exactly one of `locate` or `locations`")
    outcomes = []
    for series in archive.series:
        if locations is not None:
            try:
                location = int(locations[series.name])
            except KeyError:
                raise ValueError(
                    f"no precomputed location for series {series.name!r}"
                ) from None
        else:
            location = int(locate(series))
        region = series.labels.regions[0]
        outcomes.append(
            UcrOutcome(
                name=series.name,
                location=location,
                correct=ucr_correct(series, location, minimum_slop),
                region_start=region.start,
                region_end=region.end,
            )
        )
    return UcrSummary(outcomes=outcomes)
