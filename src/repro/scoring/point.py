"""Point-wise scoring: precision, recall, F1 and the point-adjust protocol.

The paper (§2.6) observes that "there is simply no level of performance
that would suggest the utility of a proposed algorithm" on the flawed
benchmarks.  The functions here are the metrics those claims are made
with: plain point-wise P/R/F1, the best-F1-over-thresholds protocol used
by most deep-learning papers, and the *point-adjust* protocol (Xu et al.,
WWW 2018) whose inflationary behaviour the ablation bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import Labels

__all__ = [
    "Confusion",
    "confusion",
    "precision_recall_f1",
    "point_adjust_mask",
    "best_f1",
    "f1_curve",
]


@dataclass(frozen=True)
class Confusion:
    """Point-wise confusion counts."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def _as_mask(predictions: np.ndarray, n: int) -> np.ndarray:
    predictions = np.asarray(predictions)
    if predictions.dtype == bool:
        if predictions.size != n:
            raise ValueError(
                f"mask length {predictions.size} != series length {n}"
            )
        return predictions
    mask = np.zeros(n, dtype=bool)
    mask[predictions.astype(int)] = True
    return mask


def confusion(predictions: np.ndarray, labels: Labels) -> Confusion:
    """Confusion counts for a boolean mask (or index array) vs. labels."""
    pred = _as_mask(predictions, labels.n)
    true = labels.to_mask()
    tp = int(np.sum(pred & true))
    fp = int(np.sum(pred & ~true))
    fn = int(np.sum(~pred & true))
    tn = int(np.sum(~pred & ~true))
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def precision_recall_f1(
    predictions: np.ndarray, labels: Labels
) -> tuple[float, float, float]:
    """Convenience wrapper returning ``(precision, recall, f1)``."""
    c = confusion(predictions, labels)
    return c.precision, c.recall, c.f1


def point_adjust_mask(predictions: np.ndarray, labels: Labels) -> np.ndarray:
    """Apply the point-adjust protocol to a prediction mask.

    If *any* point of a ground-truth region is flagged, the whole region
    is treated as flagged.  This is the widely used (and widely
    criticized) protocol: on benchmarks with long anomalous regions it
    rewards a detector for a single lucky hit, which is one mechanism
    behind the paper's "illusion of progress".
    """
    pred = _as_mask(predictions, labels.n).copy()
    for region in labels.regions:
        if pred[region.start : region.end].any():
            pred[region.start : region.end] = True
    return pred


def f1_curve(
    scores: np.ndarray,
    labels: Labels,
    num_thresholds: int = 200,
    adjust: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """F1 at a grid of candidate thresholds over ``scores``.

    Thresholds are score quantiles (unique); returns ``(thresholds,
    f1s)``.  With ``adjust=True`` predictions are point-adjusted first.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size != labels.n:
        raise ValueError("scores and labels disagree on length")
    finite = scores[np.isfinite(scores)]
    if finite.size == 0:
        return np.empty(0), np.empty(0)
    quantiles = np.linspace(0.0, 1.0, num_thresholds, endpoint=False)
    thresholds = np.unique(np.quantile(finite, quantiles))
    f1s = np.empty(thresholds.size)
    for i, threshold in enumerate(thresholds):
        pred = scores > threshold
        if adjust:
            pred = point_adjust_mask(pred, labels)
        f1s[i] = confusion(pred, labels).f1
    return thresholds, f1s


def best_f1(
    scores: np.ndarray,
    labels: Labels,
    num_thresholds: int = 200,
    adjust: bool = False,
) -> float:
    """Best F1 over a threshold sweep — the dominant evaluation protocol.

    The oracle threshold choice itself is optimistic; combined with
    ``adjust=True`` it reproduces the most inflation-prone protocol in
    the literature.
    """
    _, f1s = f1_curve(scores, labels, num_thresholds, adjust)
    return float(f1s.max()) if f1s.size else 0.0
