"""Range-based precision and recall (Tatbul et al., NeurIPS 2018).

The paper cites this model ([20]) as the principled alternative to point
metrics, while noting "almost no one uses this" because the resulting
scores are hard to interpret.  We implement the full model: existence
reward, size/overlap reward with positional bias, and a cardinality
penalty for fragmented predictions.

Terminology follows the original: ``R`` = set of real (ground-truth)
anomaly ranges, ``P`` = set of predicted ranges.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..types import AnomalyRegion, Labels

__all__ = [
    "positional_bias",
    "range_recall",
    "range_precision",
    "range_f1",
    "RangeScore",
    "score_ranges",
]

BiasFn = Callable[[int, int], float]


def positional_bias(kind: str) -> BiasFn:
    """Return ``delta(i, length)`` weighting position ``i`` (1-based).

    ``flat``   — every position equal (the default in the original);
    ``front``  — earlier positions matter more (early detection, cf. the
                 paper's pump example in §2.3);
    ``back``   — later positions matter more;
    ``middle`` — the middle of the range matters most.
    """
    if kind == "flat":
        return lambda i, length: 1.0
    if kind == "front":
        return lambda i, length: float(length - i + 1)
    if kind == "back":
        return lambda i, length: float(i)
    if kind == "middle":
        return lambda i, length: float(
            i if i <= length / 2 else length - i + 1
        )
    raise ValueError(f"unknown positional bias: {kind!r}")


def _omega(range_: AnomalyRegion, overlap: AnomalyRegion | None, delta: BiasFn) -> float:
    """Size reward: weighted fraction of ``range_`` covered by ``overlap``."""
    length = range_.length
    total = 0.0
    covered = 0.0
    for offset in range(1, length + 1):
        weight = delta(offset, length)
        total += weight
        position = range_.start + offset - 1
        if overlap is not None and overlap.start <= position < overlap.end:
            covered += weight
    return covered / total if total > 0 else 0.0


def _overlap(a: AnomalyRegion, b: AnomalyRegion) -> AnomalyRegion | None:
    lo = max(a.start, b.start)
    hi = min(a.end, b.end)
    return AnomalyRegion(lo, hi) if lo < hi else None


def _cardinality_factor(
    range_: AnomalyRegion, others: Sequence[AnomalyRegion], gamma: str
) -> float:
    overlapping = sum(1 for other in others if range_.overlaps(other))
    if overlapping <= 1:
        return 1.0
    if gamma == "one":
        return 1.0
    if gamma == "reciprocal":
        return 1.0 / overlapping
    raise ValueError(f"unknown gamma: {gamma!r}")


def _single_range_score(
    range_: AnomalyRegion,
    others: Sequence[AnomalyRegion],
    alpha: float,
    delta: BiasFn,
    gamma: str,
) -> float:
    """Score of one range against the other set (eq. (1)-(4) of [20])."""
    existence = 1.0 if any(range_.overlaps(other) for other in others) else 0.0
    cardinality = _cardinality_factor(range_, others, gamma)
    total_overlap = 0.0
    for other in others:
        piece = _overlap(range_, other)
        if piece is not None:
            total_overlap += _omega(range_, piece, delta)
    overlap_reward = cardinality * total_overlap
    return alpha * existence + (1.0 - alpha) * min(overlap_reward, 1.0)


def range_recall(
    real: Sequence[AnomalyRegion],
    predicted: Sequence[AnomalyRegion],
    alpha: float = 0.5,
    bias: str = "flat",
    gamma: str = "one",
) -> float:
    """Range-based recall: average per-real-range score."""
    if not real:
        return 0.0
    delta = positional_bias(bias)
    return float(
        np.mean(
            [
                _single_range_score(range_, predicted, alpha, delta, gamma)
                for range_ in real
            ]
        )
    )


def range_precision(
    real: Sequence[AnomalyRegion],
    predicted: Sequence[AnomalyRegion],
    bias: str = "flat",
    gamma: str = "one",
) -> float:
    """Range-based precision (no existence term, per the original)."""
    if not predicted:
        return 0.0
    delta = positional_bias(bias)
    return float(
        np.mean(
            [
                _single_range_score(range_, real, 0.0, delta, gamma)
                for range_ in predicted
            ]
        )
    )


def range_f1(precision: float, recall: float) -> float:
    """Harmonic mean of range precision and recall."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class RangeScore:
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        return range_f1(self.precision, self.recall)


def score_ranges(
    predictions: np.ndarray,
    labels: Labels,
    alpha: float = 0.5,
    recall_bias: str = "flat",
    precision_bias: str = "flat",
    gamma: str = "one",
) -> RangeScore:
    """Range precision/recall of a boolean prediction mask vs. labels."""
    pred_labels = Labels.from_mask(np.asarray(predictions, dtype=bool))
    if pred_labels.n != labels.n:
        raise ValueError("predictions and labels disagree on length")
    return RangeScore(
        precision=range_precision(
            list(labels.regions), list(pred_labels.regions), precision_bias, gamma
        ),
        recall=range_recall(
            list(labels.regions), list(pred_labels.regions), alpha, recall_bias, gamma
        ),
    )
