"""Numenta Anomaly Benchmark (NAB) scoring.

The paper (§2.3) mentions that Numenta "suggested rewarding more for
earlier detection ... however the resulting scoring function is
exceedingly difficult to interpret, and almost no one uses this".  We
implement the NAB model so that claim can be demonstrated:

* each ground-truth anomaly gets an *anomaly window*;
* the first detection inside a window earns a sigmoid-shaped reward
  (earlier in the window = higher);
* detections outside every window are false positives penalized by a
  sigmoid of the distance past the previous window;
* missed windows incur the false-negative penalty;
* the raw score is normalized between the "detects nothing" baseline
  (score 0) and the perfect detector (score 100).

Application profiles reweight TP/FP/FN exactly as NAB's standard,
reward-low-FP and reward-low-FN profiles do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import AnomalyRegion, Labels

__all__ = ["NabProfile", "PROFILES", "nab_windows", "nab_score", "NabResult"]


@dataclass(frozen=True)
class NabProfile:
    """Relative weights of the NAB cost matrix."""

    name: str
    a_tp: float
    a_fp: float
    a_fn: float


PROFILES: dict[str, NabProfile] = {
    "standard": NabProfile("standard", a_tp=1.0, a_fp=0.11, a_fn=1.0),
    "reward_low_fp": NabProfile("reward_low_fp", a_tp=1.0, a_fp=0.22, a_fn=1.0),
    "reward_low_fn": NabProfile("reward_low_fn", a_tp=1.0, a_fp=0.11, a_fn=2.0),
}


def nab_windows(labels: Labels, window_fraction: float = 0.10) -> list[AnomalyRegion]:
    """Anomaly windows centered on each label, NAB-style.

    NAB sizes windows as ``window_fraction`` of the series length divided
    by the number of anomalies, centered on each labeled anomaly.  The
    window never shrinks below the labeled region itself.
    """
    if labels.num_regions == 0:
        return []
    width = int(labels.n * window_fraction / labels.num_regions)
    windows = []
    for region in labels.regions:
        half = max((width - region.length) // 2, 0)
        windows.append(region.expanded(half, labels.n))
    return windows


def _scaled_sigmoid(relative_position: float) -> float:
    """NAB's scaled sigmoid: 1 at far-left of window, ~-1 far beyond it."""
    return 2.0 / (1.0 + np.exp(5.0 * relative_position)) - 1.0


@dataclass(frozen=True)
class NabResult:
    """Raw and normalized NAB scores plus bookkeeping counts."""

    score: float  # normalized 0..100 (null detector = 0, perfect = 100)
    raw: float
    tp_windows: int
    fn_windows: int
    fp_count: int


def nab_score(
    detections: np.ndarray,
    labels: Labels,
    profile: str | NabProfile = "standard",
    window_fraction: float = 0.10,
) -> NabResult:
    """Score detection indices against labels with the NAB model."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    detections = np.unique(np.asarray(detections, dtype=int))
    windows = nab_windows(labels, window_fraction)

    raw = 0.0
    tp_windows = 0
    fp_count = 0
    used = np.zeros(detections.size, dtype=bool)
    for window in windows:
        inside = [
            i
            for i, position in enumerate(detections)
            if window.start <= position < window.end
        ]
        if inside:
            tp_windows += 1
            first = detections[inside[0]]
            # relative position in [-1, 0]: -1 at window start, 0 at end
            relative = (first - (window.end - 1)) / max(window.length, 1)
            raw += profile.a_tp * _scaled_sigmoid(relative)
            for i in inside:
                used[i] = True
        else:
            raw -= profile.a_fn
    fn_windows = len(windows) - tp_windows

    for i, position in enumerate(detections):
        if used[i]:
            continue
        fp_count += 1
        previous_end = 0
        for window in windows:
            if window.end <= position:
                previous_end = max(previous_end, window.end)
        if previous_end > 0:
            relative = (position - previous_end) / max(labels.n // 20, 1)
            weight = abs(_scaled_sigmoid(relative))
        else:
            weight = 1.0
        raw -= profile.a_fp * weight

    # the perfect detector fires at each window's first position, whose
    # relative position is -(length-1)/length, not exactly -1
    perfect = sum(
        profile.a_tp
        * _scaled_sigmoid(-(window.length - 1) / max(window.length, 1))
        for window in windows
    )
    null = -profile.a_fn * len(windows)
    if perfect == null:
        normalized = 0.0
    else:
        normalized = 100.0 * (raw - null) / (perfect - null)
    return NabResult(
        score=float(normalized),
        raw=float(raw),
        tp_windows=tp_windows,
        fn_windows=fn_windows,
        fp_count=fp_count,
    )
