"""Scoring functions: point, range-based, NAB and UCR protocols."""

from .nab import PROFILES, NabProfile, NabResult, nab_score, nab_windows
from .point import (
    Confusion,
    best_f1,
    confusion,
    f1_curve,
    point_adjust_mask,
    precision_recall_f1,
)
from .range_based import (
    RangeScore,
    positional_bias,
    range_f1,
    range_precision,
    range_recall,
    score_ranges,
)
from .ucr import UcrOutcome, UcrSummary, score_archive, ucr_correct, ucr_slop

__all__ = [
    "Confusion",
    "confusion",
    "precision_recall_f1",
    "point_adjust_mask",
    "best_f1",
    "f1_curve",
    "RangeScore",
    "range_precision",
    "range_recall",
    "range_f1",
    "positional_bias",
    "score_ranges",
    "NabProfile",
    "NabResult",
    "PROFILES",
    "nab_score",
    "nab_windows",
    "UcrOutcome",
    "UcrSummary",
    "ucr_correct",
    "ucr_slop",
    "score_archive",
]
