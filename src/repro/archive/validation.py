"""Archive validator: the checks §3 of the paper builds its archive on.

Structural checks run per dataset:

* exactly one labeled anomaly, entirely inside the test region;
* all values finite, a usable training prefix;
* the UCR name, if the series carries one, must agree with the labels.

The *triviality screen* runs the one-liner brute force on each dataset.
The archive deliberately keeps "a small fraction" of one-liner-solvable
problems (dropouts are legitimately trivial), so the archive-level check
is a bounded fraction, not zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..oneliner.search import SearchConfig, search_series
from ..types import Archive, LabeledSeries
from .naming import parse_name

__all__ = ["SeriesValidation", "ArchiveValidation", "validate_series", "validate_archive"]

MIN_TRAIN = 100


@dataclass
class SeriesValidation:
    """Issues found in one dataset (empty list = valid)."""

    name: str
    issues: list[str] = field(default_factory=list)
    trivially_solvable: bool | None = None

    @property
    def ok(self) -> bool:
        return not self.issues


def validate_series(
    series: LabeledSeries,
    check_triviality: bool = False,
    search_config: SearchConfig | None = None,
) -> SeriesValidation:
    """Run all structural checks (and optionally the triviality screen)."""
    result = SeriesValidation(name=series.name)
    issues = result.issues

    if series.labels.num_regions != 1:
        issues.append(
            f"expected exactly 1 labeled anomaly, found "
            f"{series.labels.num_regions}"
        )
    if not np.isfinite(series.values).all():
        issues.append("series contains non-finite values")
    if series.train_len < MIN_TRAIN:
        issues.append(
            f"training prefix of {series.train_len} points is shorter "
            f"than the minimum {MIN_TRAIN}"
        )
    for region in series.labels.regions:
        if region.start < series.train_len:
            issues.append(
                f"labeled region starts at {region.start}, inside the "
                f"training prefix ({series.train_len})"
            )
    if series.name.startswith("UCR_Anomaly_"):
        try:
            parsed = parse_name(series.name)
        except ValueError as error:
            issues.append(f"bad archive name: {error}")
        else:
            if parsed.train_len != series.train_len:
                issues.append(
                    f"name says train={parsed.train_len}, series has "
                    f"{series.train_len}"
                )
            if series.labels.regions and parsed.region != series.labels.regions[0]:
                issues.append(
                    f"name region {parsed.region} disagrees with labels "
                    f"{series.labels.regions[0]}"
                )

    if check_triviality and series.labels.num_regions == 1:
        config = search_config or SearchConfig()
        result.trivially_solvable = search_series(series, config).solved
    return result


@dataclass
class ArchiveValidation:
    """Aggregate validation of an archive."""

    results: list[SeriesValidation]
    max_trivial_fraction: float

    @property
    def structural_failures(self) -> list[SeriesValidation]:
        return [result for result in self.results if not result.ok]

    @property
    def trivial_fraction(self) -> float:
        screened = [
            result
            for result in self.results
            if result.trivially_solvable is not None
        ]
        if not screened:
            return 0.0
        solvable = sum(result.trivially_solvable for result in screened)
        return solvable / len(screened)

    @property
    def ok(self) -> bool:
        if self.structural_failures:
            return False
        return self.trivial_fraction <= self.max_trivial_fraction

    def format(self) -> str:
        lines = [
            f"datasets checked: {len(self.results)}",
            f"structural failures: {len(self.structural_failures)}",
            f"trivially solvable: {self.trivial_fraction:.1%} "
            f"(allowed {self.max_trivial_fraction:.0%})",
            f"verdict: {'OK' if self.ok else 'REJECTED'}",
        ]
        for failure in self.structural_failures:
            for issue in failure.issues:
                lines.append(f"  {failure.name}: {issue}")
        return "\n".join(lines)


def validate_archive(
    archive: Archive,
    check_triviality: bool = True,
    max_trivial_fraction: float = 0.2,
    search_config: SearchConfig | None = None,
) -> ArchiveValidation:
    """Validate every dataset; bound the one-liner-solvable fraction."""
    results = [
        validate_series(series, check_triviality, search_config)
        for series in archive.series
    ]
    return ArchiveValidation(
        results=results, max_trivial_fraction=max_trivial_fraction
    )
