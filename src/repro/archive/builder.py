"""Builder and disk IO for UCR-style anomaly archives.

Two construction paths mirror the paper's §3:

* :func:`from_natural` — a recording that already contains its anomaly,
  certified by out-of-band evidence (Fig 11: the parallel ECG).  The
  caller supplies the confirmed region; the builder packages, names and
  checks it.
* :func:`from_injection` — a clean recording plus an injection operator
  from :mod:`repro.archive.injection` (Fig 12: the swapped gait cycle).

Datasets are stored one-value-per-line in ``<ucr_name>.txt`` exactly like
the released archive, so ``save_archive``/``load_archive`` round-trip
through the real format.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

import numpy as np

from ..types import AnomalyRegion, Archive, LabeledSeries, Labels
from .naming import format_name, parse_name

__all__ = ["from_natural", "from_injection", "save_archive", "load_archive"]


def _package(
    base: str,
    values: np.ndarray,
    region: AnomalyRegion,
    train_len: int,
    meta: dict | None,
) -> LabeledSeries:
    values = np.asarray(values, dtype=float)
    name = format_name(base, train_len, region)
    labels = Labels(n=values.size, regions=(region,))
    return LabeledSeries(
        name=name,
        values=values,
        labels=labels,
        train_len=train_len,
        meta=dict(meta or {}),
    )


def from_natural(
    base: str,
    values: np.ndarray,
    region: AnomalyRegion,
    train_len: int,
    evidence: str,
    meta: dict | None = None,
) -> LabeledSeries:
    """Package a naturally-anomalous recording.

    ``evidence`` documents the out-of-band confirmation (e.g. "PVC seen
    in parallel ECG") and is stored in the series metadata — the archive
    keeps "detailed provenance and metadata for each dataset".
    """
    if not evidence:
        raise ValueError(
            "natural anomalies need out-of-band evidence (paper §3.1)"
        )
    merged = dict(meta or {})
    merged.update({"origin": "natural", "evidence": evidence})
    return _package(base, values, region, train_len, merged)


def from_injection(
    base: str,
    clean_values: np.ndarray,
    train_len: int,
    injector: Callable[..., tuple[np.ndarray, AnomalyRegion]],
    meta: dict | None = None,
    **injector_kwargs,
) -> LabeledSeries:
    """Inject a synthetic anomaly into a clean recording and package it."""
    values, region = injector(clean_values, **injector_kwargs)
    if region.start < train_len:
        raise ValueError(
            f"injection at {region.start} falls inside the training "
            f"prefix ({train_len})"
        )
    merged = dict(meta or {})
    merged.update(
        {"origin": "synthetic", "injector": getattr(injector, "__name__", "?")}
    )
    return _package(base, values, region, train_len, merged)


def save_archive(archive: Archive, directory: str | Path) -> list[Path]:
    """Write every dataset as ``<name>.txt``, one value per line."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for series in archive.series:
        path = directory / f"{series.name}.txt"
        np.savetxt(path, series.values, fmt="%.6f")
        written.append(path)
    return written


def load_archive(directory: str | Path, name: str | None = None) -> Archive:
    """Load every ``UCR_Anomaly_*.txt`` file in a directory."""
    directory = Path(directory)
    series_list = []
    for path in sorted(directory.glob("UCR_Anomaly_*.txt")):
        parsed = parse_name(path.stem)
        values = np.loadtxt(path)
        series_list.append(
            LabeledSeries(
                name=path.stem,
                values=values,
                labels=parsed.labels(values.size),
                train_len=parsed.train_len,
                meta={"path": str(path)},
            )
        )
    return Archive(name or directory.name, series_list)
