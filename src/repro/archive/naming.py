"""UCR Anomaly Archive file-name convention.

Archive datasets encode their evaluation protocol in the file name
(paper §3.1): ``UCR_Anomaly_<name>_<train>_<begin>_<end>`` means the
first ``train`` points are the anomaly-free training prefix and the
single anomaly lies in ``[begin, end]``.

The archive uses *inclusive* 1-free boundaries in names (e.g.
``UCR_Anomaly_BIDMC1_2500_5400_5600``); internally we keep the library's
half-open 0-based convention, so ``parse``/``format`` translate: a name
``..._b_e`` maps to region ``[b, e + 1)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..types import AnomalyRegion, LabeledSeries, Labels

__all__ = ["UcrName", "parse_name", "format_name", "name_series"]

_PATTERN = re.compile(
    r"^UCR_Anomaly_(?P<name>.+)_(?P<train>\d+)_(?P<begin>\d+)_(?P<end>\d+)$"
)


@dataclass(frozen=True)
class UcrName:
    """Parsed UCR archive dataset name."""

    base: str
    train_len: int
    begin: int  # inclusive, as written in the file name
    end: int  # inclusive, as written in the file name

    @property
    def region(self) -> AnomalyRegion:
        """The labeled region in half-open library coordinates."""
        return AnomalyRegion(self.begin, self.end + 1)

    def labels(self, n: int) -> Labels:
        return Labels(n=n, regions=(self.region,))


def parse_name(name: str) -> UcrName:
    """Parse ``UCR_Anomaly_<base>_<train>_<begin>_<end>``."""
    stem = name.removesuffix(".txt")
    match = _PATTERN.match(stem)
    if match is None:
        raise ValueError(f"not a UCR anomaly archive name: {name!r}")
    train = int(match.group("train"))
    begin = int(match.group("begin"))
    end = int(match.group("end"))
    if end < begin:
        raise ValueError(f"{name!r}: anomaly end {end} before begin {begin}")
    if begin < train:
        raise ValueError(
            f"{name!r}: anomaly begins at {begin}, inside the training "
            f"prefix of {train}"
        )
    return UcrName(
        base=match.group("name"), train_len=train, begin=begin, end=end
    )


def format_name(base: str, train_len: int, region: AnomalyRegion) -> str:
    """Render the archive name for a half-open labeled region."""
    if region.start < train_len:
        raise ValueError(
            f"anomaly at {region.start} lies inside the training prefix "
            f"({train_len})"
        )
    return f"UCR_Anomaly_{base}_{train_len}_{region.start}_{region.end - 1}"


def name_series(series: LabeledSeries, base: str | None = None) -> str:
    """Archive name for a single-anomaly :class:`LabeledSeries`."""
    if series.labels.num_regions != 1:
        raise ValueError(
            f"{series.name}: UCR naming requires exactly one region, "
            f"found {series.labels.num_regions}"
        )
    return format_name(
        base or series.name, series.train_len, series.labels.regions[0]
    )
