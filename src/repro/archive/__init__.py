"""UCR anomaly-archive construction: naming, injection, building, validation."""

from .builder import from_injection, from_natural, load_archive, save_archive
from .injection import (
    INJECTORS,
    amplitude_change,
    dropout,
    freeze,
    local_warp,
    missing_sentinel,
    noise_burst,
    reverse_segment,
    smooth_segment,
    spike,
    swap_cycle,
    triangle_cycle,
)
from .naming import UcrName, format_name, name_series, parse_name
from .validation import (
    ArchiveValidation,
    SeriesValidation,
    validate_archive,
    validate_series,
)

__all__ = [
    "UcrName",
    "parse_name",
    "format_name",
    "name_series",
    "freeze",
    "dropout",
    "spike",
    "noise_burst",
    "amplitude_change",
    "reverse_segment",
    "smooth_segment",
    "local_warp",
    "triangle_cycle",
    "missing_sentinel",
    "swap_cycle",
    "INJECTORS",
    "from_natural",
    "from_injection",
    "save_archive",
    "load_archive",
    "validate_series",
    "validate_archive",
    "SeriesValidation",
    "ArchiveValidation",
]
