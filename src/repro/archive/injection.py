"""Anomaly injection operators (paper §3.2, "synthetic but highly
plausible anomalies").

Each operator takes a clean series and returns ``(values, region)`` — the
modified series and the half-open region that should be labeled.  All
operators are deterministic given their RNG and never touch points
outside the returned region (except :func:`swap_cycle`, whose shifted
splice the paper describes explicitly).
"""

from __future__ import annotations

import numpy as np

from ..types import AnomalyRegion

__all__ = [
    "freeze",
    "dropout",
    "spike",
    "noise_burst",
    "amplitude_change",
    "reverse_segment",
    "smooth_segment",
    "local_warp",
    "triangle_cycle",
    "missing_sentinel",
    "swap_cycle",
    "INJECTORS",
]


def _validated(values: np.ndarray, start: int, length: int) -> np.ndarray:
    values = np.asarray(values, dtype=float).copy()
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if not 0 <= start <= values.size - length:
        raise ValueError(
            f"segment [{start}, {start + length}) outside series of "
            f"length {values.size}"
        )
    return values


def freeze(values: np.ndarray, start: int, length: int) -> tuple[np.ndarray, AnomalyRegion]:
    """Dynamic signal becomes exactly constant (the NASA failure mode)."""
    out = _validated(values, start, length)
    out[start : start + length] = out[start]
    return out, AnomalyRegion(start, start + length)


def dropout(
    values: np.ndarray, start: int, length: int = 1, level: float | None = None
) -> tuple[np.ndarray, AnomalyRegion]:
    """Short fall to a fixed level (a sensor dropout)."""
    out = _validated(values, start, length)
    if level is None:
        level = float(np.min(out) - 0.5 * (np.max(out) - np.min(out) + 1e-9))
    out[start : start + length] = level
    return out, AnomalyRegion(start, start + length)


def spike(
    values: np.ndarray, start: int, magnitude: float
) -> tuple[np.ndarray, AnomalyRegion]:
    """Single additive point spike."""
    out = _validated(values, start, 1)
    out[start] += magnitude
    return out, AnomalyRegion(start, start + 1)


def noise_burst(
    values: np.ndarray,
    start: int,
    length: int,
    scale: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, AnomalyRegion]:
    """Added Gaussian noise over a segment."""
    out = _validated(values, start, length)
    out[start : start + length] += rng.normal(0.0, scale, length)
    return out, AnomalyRegion(start, start + length)


def amplitude_change(
    values: np.ndarray, start: int, length: int, factor: float
) -> tuple[np.ndarray, AnomalyRegion]:
    """Scale a segment about its own mean (damped or exaggerated cycle)."""
    out = _validated(values, start, length)
    segment = out[start : start + length]
    center = segment.mean()
    out[start : start + length] = center + factor * (segment - center)
    return out, AnomalyRegion(start, start + length)


def reverse_segment(
    values: np.ndarray, start: int, length: int
) -> tuple[np.ndarray, AnomalyRegion]:
    """Time-reverse a segment (subtle shape anomaly)."""
    out = _validated(values, start, length)
    out[start : start + length] = out[start : start + length][::-1]
    return out, AnomalyRegion(start, start + length)


def smooth_segment(
    values: np.ndarray, start: int, length: int, passes: int = 8
) -> tuple[np.ndarray, AnomalyRegion]:
    """Low-pass a segment with repeated 3-point averaging."""
    out = _validated(values, start, length)
    segment = out[start : start + length].copy()
    for _ in range(passes):
        if segment.size < 3:
            break
        inner = (segment[:-2] + segment[1:-1] + segment[2:]) / 3.0
        segment = np.concatenate([[segment[0]], inner, [segment[-1]]])
    out[start : start + length] = segment
    return out, AnomalyRegion(start, start + length)


def local_warp(
    values: np.ndarray, start: int, length: int, factor: float = 1.3
) -> tuple[np.ndarray, AnomalyRegion]:
    """Locally stretch (factor > 1) or compress time within a segment.

    The segment is resampled so the same shape plays out at a different
    speed, then trimmed/padded back to the original length — mimicking a
    heart-rate or gait-speed glitch.
    """
    out = _validated(values, start, length)
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    segment = out[start : start + length]
    source = np.linspace(0.0, 1.0, segment.size)
    warped_axis = np.linspace(0.0, 1.0, max(2, int(round(segment.size * factor))))
    warped = np.interp(warped_axis, source, segment)
    resampled = np.interp(source, np.linspace(0.0, 1.0, warped.size), warped)
    out[start : start + length] = resampled
    return out, AnomalyRegion(start, start + length)


def triangle_cycle(
    values: np.ndarray,
    start: int,
    length: int,
    rng: np.random.Generator | None = None,
    noise: float = 0.0,
) -> tuple[np.ndarray, AnomalyRegion]:
    """Replace one cycle with a triangle wave of matched range.

    The triangle interpolates segment-start → segment max → segment min →
    segment-end through the quarter points, so it is C0-continuous and
    its slopes stay inside the original cycle's slope range — a pure
    *shape* anomaly with no diff/threshold signature (the kind the paper
    argues should populate a non-trivial benchmark).
    """
    out = _validated(values, start, length)
    segment = out[start : start + length]
    if length < 4:
        raise ValueError(f"need at least 4 points for a cycle, got {length}")
    nodes = [0.0, (length - 1) / 4.0, 3.0 * (length - 1) / 4.0, float(length - 1)]
    levels = [segment[0], segment.max(), segment.min(), segment[-1]]
    triangle = np.interp(np.arange(length, dtype=float), nodes, levels)
    if noise > 0.0:
        if rng is None:
            raise ValueError("noise > 0 requires an rng")
        triangle = triangle + rng.uniform(-noise, noise, length)
    out[start : start + length] = triangle
    return out, AnomalyRegion(start, start + length)


def missing_sentinel(
    values: np.ndarray, start: int, length: int = 1, sentinel: float = -9999.0
) -> tuple[np.ndarray, AnomalyRegion]:
    """AspenTech-style missing-data sentinel (paper §3: ``-9999``)."""
    out = _validated(values, start, length)
    out[start : start + length] = sentinel
    return out, AnomalyRegion(start, start + length)


def swap_cycle(
    values: np.ndarray,
    donor: np.ndarray,
    start: int,
    length: int,
    shift: int = 0,
) -> tuple[np.ndarray, AnomalyRegion]:
    """Replace one cycle with the same cycle from a parallel channel.

    This is exactly the paper's Fig 12 construction: "we replaced a
    single, randomly chosen right-foot cycle with the corresponding
    left-foot cycle (shifting it by a half cycle length)".
    """
    out = _validated(values, start, length)
    donor = np.asarray(donor, dtype=float)
    lo = start + shift
    if not 0 <= lo <= donor.size - length:
        raise ValueError(
            f"shifted donor segment [{lo}, {lo + length}) outside donor "
            f"of length {donor.size}"
        )
    out[start : start + length] = donor[lo : lo + length]
    return out, AnomalyRegion(start, start + length)


INJECTORS = {
    "freeze": freeze,
    "dropout": dropout,
    "spike": spike,
    "noise_burst": noise_burst,
    "amplitude_change": amplitude_change,
    "reverse_segment": reverse_segment,
    "smooth_segment": smooth_segment,
    "local_warp": local_warp,
    "triangle_cycle": triangle_cycle,
    "missing_sentinel": missing_sentinel,
    "swap_cycle": swap_cycle,
}
