"""Brute-force one-liner search (the engine behind Table 1).

The paper "did a simple bruteforce search to compute individual k, c and b
which solve anomaly detection problems on all 367 time series".  We grid
over the discrete parameters ``k`` and ``c`` exactly as a brute force
would, but solve for the offset ``b`` *exactly* instead of gridding it:
for a fixed family/(k, c) the predicate is ``score > b`` for a computable
per-point score, so a solving ``b`` exists iff the smallest per-region
score maximum strictly exceeds the largest score outside all (tolerance-
expanded) regions.  This is equivalent to an infinitely fine ``b`` grid
and makes the search deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..types import LabeledSeries, Labels
from .criteria import SolveReport, solves
from .expressions import DiffFamilyOneLiner, make_family

__all__ = [
    "SearchConfig",
    "SeriesSearchResult",
    "threshold_for",
    "solve_with_family",
    "search_series",
    "search_archive",
]


@dataclass(frozen=True)
class SearchConfig:
    """Grid and matching parameters for the brute-force search."""

    ks: tuple[int, ...] = (5, 10, 20, 50)
    cs: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0)
    tolerance: int = 2
    families: tuple[int, ...] = (3, 4, 5, 6)


@dataclass(frozen=True)
class SeriesSearchResult:
    """Outcome of the search on one series."""

    name: str
    solved: bool
    family: int | None = None
    oneliner: DiffFamilyOneLiner | None = None
    report: SolveReport | None = None


def threshold_for(
    score: np.ndarray, labels: Labels, tolerance: int = 2
) -> float | None:
    """Exact offset ``b`` such that ``score > b`` solves, or None.

    ``score`` must be aligned to point indices (undefined points scored
    ``-inf``).  Returns the midpoint between the tightest region maximum
    and the largest outside score when separation exists.
    """
    score = np.asarray(score, dtype=float)
    if labels.num_regions == 0:
        return None
    expanded = [region.expanded(tolerance, labels.n) for region in labels.regions]
    inside = np.zeros(labels.n, dtype=bool)
    region_maxima = []
    for region in expanded:
        inside[region.start : region.end] = True
        region_maxima.append(float(np.max(score[region.start : region.end])))
    min_region_max = min(region_maxima)
    if not np.isfinite(min_region_max):
        return None
    outside_scores = score[~inside]
    outside_max = float(np.max(outside_scores)) if outside_scores.size else -np.inf
    if min_region_max <= outside_max:
        return None
    if np.isfinite(outside_max):
        return (min_region_max + outside_max) / 2.0
    return min_region_max - max(1.0, abs(min_region_max)) / 2.0


def _base_score(series: LabeledSeries, family: int, k: int, c: float) -> np.ndarray:
    """Per-point score of the family's expression with ``b = 0``."""
    template = make_family(family, k=k, c=c, b=0.0)
    return template.score(series.values)


def solve_with_family(
    series: LabeledSeries,
    family: int,
    config: SearchConfig = SearchConfig(),
) -> SeriesSearchResult:
    """Search one family's parameter grid on one series."""
    if family in (3, 5):
        grid = [(1, 0.0)]
    else:
        max_k = max(2, series.n - 2)
        grid = [(k, c) for k in config.ks if k <= max_k for c in config.cs]
    for k, c in grid:
        score = _base_score(series, family, k, c)
        b = threshold_for(score, series.labels, config.tolerance)
        if b is None:
            continue
        oneliner = make_family(family, k=k, c=c, b=b)
        report = solves(oneliner, series, config.tolerance)
        if report.solved:
            return SeriesSearchResult(
                name=series.name,
                solved=True,
                family=family,
                oneliner=oneliner,
                report=report,
            )
    return SeriesSearchResult(name=series.name, solved=False)


def search_series(
    series: LabeledSeries,
    config: SearchConfig = SearchConfig(),
    families: tuple[int, ...] | None = None,
) -> SeriesSearchResult:
    """Try families in order; return the first solving parameterization."""
    for family in families or config.families:
        result = solve_with_family(series, family, config)
        if result.solved:
            return result
    return SeriesSearchResult(name=series.name, solved=False)


@dataclass
class ArchiveSearchResult:
    """Search results for every series of an archive."""

    results: dict[str, SeriesSearchResult] = field(default_factory=dict)

    @property
    def num_solved(self) -> int:
        return sum(result.solved for result in self.results.values())

    @property
    def num_series(self) -> int:
        return len(self.results)

    @property
    def solved_fraction(self) -> float:
        if not self.results:
            return 0.0
        return self.num_solved / self.num_series

    def solved_by_family(self) -> dict[int, int]:
        """Count of series first solved by each family id."""
        counts: dict[int, int] = {}
        for result in self.results.values():
            if result.solved and result.family is not None:
                counts[result.family] = counts.get(result.family, 0) + 1
        return counts


def search_archive(
    archive,
    config: SearchConfig = SearchConfig(),
    families_for: "callable | None" = None,
) -> ArchiveSearchResult:
    """Run the search over every series of an archive.

    ``families_for(series) -> tuple[int, ...]`` optionally narrows the
    family order per series (the paper reports families (3)/(4) for Yahoo
    A1/A2 and (5)/(6) for A3/A4).
    """
    outcome = ArchiveSearchResult()
    for series in archive.series:
        families = families_for(series) if families_for is not None else None
        outcome.results[series.name] = search_series(series, config, families)
    return outcome
