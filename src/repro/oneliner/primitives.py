"""MATLAB-semantics vectorized primitives.

Definition 1 of the paper restricts one-liners to "basic vectorized
primitive operations, such as mean, max, std, diff, etc." in MATLAB.  The
paper's expressions (1)-(6) use ``diff``, ``movmean`` and ``movstd``, so
those must match MATLAB behaviour exactly:

* ``diff(A)`` has length ``n - 1``.
* ``movmean(A, k)`` / ``movstd(A, k)`` use a *centered* window.  For odd
  ``k`` the window is symmetric; for even ``k`` it covers ``k/2`` elements
  before and ``k/2 - 1`` after the current element (MATLAB convention).
  Endpoint windows *shrink* (MATLAB default ``'Endpoints','shrink'``).
* ``movstd`` normalizes by ``N - 1`` (sample std, MATLAB default ``w=0``)
  and returns 0 for singleton windows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diff",
    "movmean",
    "movstd",
    "movsum",
    "movmax",
    "movmin",
    "window_bounds",
]


def _as_float_1d(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {array.shape}")
    return array


def diff(values: np.ndarray, order: int = 1) -> np.ndarray:
    """First (or ``order``-th) difference, MATLAB ``diff``."""
    array = _as_float_1d(values)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if array.size <= order:
        return np.empty(0, dtype=float)
    return np.diff(array, n=order)


def window_bounds(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-index half-open window ``[lo, hi)`` for MATLAB moving windows.

    For odd ``k``: ``lo = i - (k-1)/2``, ``hi = i + (k-1)/2 + 1``.
    For even ``k``: ``lo = i - k/2``, ``hi = i + k/2`` (k/2 before,
    k/2 - 1 after, plus the element itself).  Bounds are clipped to
    ``[0, n]`` which implements the shrinking endpoints.
    """
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    indices = np.arange(n)
    if k % 2 == 1:
        half = (k - 1) // 2
        lo = indices - half
        hi = indices + half + 1
    else:
        lo = indices - k // 2
        hi = indices + k // 2
    return np.clip(lo, 0, n), np.clip(hi, 0, n)


def _windowed_sums(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Window sums, squared sums and counts via prefix sums (O(n))."""
    array = _as_float_1d(values)
    n = array.size
    lo, hi = window_bounds(n, k)
    prefix = np.concatenate(([0.0], np.cumsum(array)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(array * array)))
    counts = (hi - lo).astype(float)
    sums = prefix[hi] - prefix[lo]
    sums_sq = prefix_sq[hi] - prefix_sq[lo]
    return sums, sums_sq, counts


def movmean(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving mean with shrinking endpoints (MATLAB ``movmean``)."""
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0 or k == 1:
        return array.copy()
    sums, _, counts = _windowed_sums(array, k)
    return sums / counts


def movstd(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving sample std with shrinking endpoints (``movstd``).

    Prefix sums of raw values cancel catastrophically when the series
    mean dwarfs the deviations, so the series is shifted by its global
    mean first; the result is invariant to that shift.
    """
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0:
        return array.copy()
    if k == 1:
        return np.zeros_like(array)
    shifted = array - array.mean()
    sums, sums_sq, counts = _windowed_sums(shifted, k)
    mean = sums / counts
    # sample variance: (sum_sq - n*mean^2) / (n - 1); 0 for singleton windows
    numerator = sums_sq - counts * mean * mean
    numerator = np.maximum(numerator, 0.0)
    denominator = np.maximum(counts - 1.0, 1.0)
    variance = np.where(counts > 1, numerator / denominator, 0.0)
    return np.sqrt(variance)


def movsum(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving sum with shrinking endpoints (MATLAB ``movsum``)."""
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0:
        return array.copy()
    if k == 1:
        return array.copy()
    sums, _, _ = _windowed_sums(array, k)
    return sums


def _mov_extreme(values: np.ndarray, k: int, *, minimum: bool) -> np.ndarray:
    """Centered moving extremum with MATLAB shrinking endpoints, O(n).

    A shrunk endpoint window is exactly a full-width window over the
    series padded with the extremum's identity element (−inf for max,
    +inf for min), so the O(n) Gil-Werman sliding extremum from the
    shared sliding-statistics layer applies unchanged — the old bounded
    Python loop was O(n·k), which Table-1 window sweeps made noticeable.
    """
    # deferred import: repro.detectors pulls one-liner expressions in for
    # its baselines, so a module-level import here would be circular
    from ..detectors.sliding import sliding_max, sliding_min

    array = _as_float_1d(values)
    n = array.size
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if n == 0 or k == 1:
        return array.copy()
    if k % 2 == 1:
        before = after = (k - 1) // 2
    else:
        before, after = k // 2, k // 2 - 1
    fill = np.inf if minimum else -np.inf
    padded = np.concatenate([np.full(before, fill), array, np.full(after, fill)])
    return sliding_min(padded, k) if minimum else sliding_max(padded, k)


def movmax(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving maximum with shrinking endpoints (``movmax``)."""
    return _mov_extreme(values, k, minimum=False)


def movmin(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving minimum with shrinking endpoints (``movmin``)."""
    return _mov_extreme(values, k, minimum=True)
