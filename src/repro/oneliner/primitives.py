"""MATLAB-semantics vectorized primitives.

Definition 1 of the paper restricts one-liners to "basic vectorized
primitive operations, such as mean, max, std, diff, etc." in MATLAB.  The
paper's expressions (1)-(6) use ``diff``, ``movmean`` and ``movstd``, so
those must match MATLAB behaviour exactly:

* ``diff(A)`` has length ``n - 1``.
* ``movmean(A, k)`` / ``movstd(A, k)`` use a *centered* window.  For odd
  ``k`` the window is symmetric; for even ``k`` it covers ``k/2`` elements
  before and ``k/2 - 1`` after the current element (MATLAB convention).
  Endpoint windows *shrink* (MATLAB default ``'Endpoints','shrink'``).
* ``movstd`` normalizes by ``N - 1`` (sample std, MATLAB default ``w=0``)
  and returns 0 for singleton windows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diff",
    "movmean",
    "movstd",
    "movsum",
    "movmax",
    "movmin",
    "window_bounds",
]


def _as_float_1d(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {array.shape}")
    return array


def diff(values: np.ndarray, order: int = 1) -> np.ndarray:
    """First (or ``order``-th) difference, MATLAB ``diff``."""
    array = _as_float_1d(values)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if array.size <= order:
        return np.empty(0, dtype=float)
    return np.diff(array, n=order)


def window_bounds(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-index half-open window ``[lo, hi)`` for MATLAB moving windows.

    For odd ``k``: ``lo = i - (k-1)/2``, ``hi = i + (k-1)/2 + 1``.
    For even ``k``: ``lo = i - k/2``, ``hi = i + k/2`` (k/2 before,
    k/2 - 1 after, plus the element itself).  Bounds are clipped to
    ``[0, n]`` which implements the shrinking endpoints.
    """
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    indices = np.arange(n)
    if k % 2 == 1:
        half = (k - 1) // 2
        lo = indices - half
        hi = indices + half + 1
    else:
        lo = indices - k // 2
        hi = indices + k // 2
    return np.clip(lo, 0, n), np.clip(hi, 0, n)


def _windowed_sums(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Window sums, squared sums and counts via prefix sums (O(n))."""
    array = _as_float_1d(values)
    n = array.size
    lo, hi = window_bounds(n, k)
    prefix = np.concatenate(([0.0], np.cumsum(array)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(array * array)))
    counts = (hi - lo).astype(float)
    sums = prefix[hi] - prefix[lo]
    sums_sq = prefix_sq[hi] - prefix_sq[lo]
    return sums, sums_sq, counts


def movmean(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving mean with shrinking endpoints (MATLAB ``movmean``)."""
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0 or k == 1:
        return array.copy()
    sums, _, counts = _windowed_sums(array, k)
    return sums / counts


def movstd(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving sample std with shrinking endpoints (``movstd``).

    Prefix sums of raw values cancel catastrophically when the series
    mean dwarfs the deviations, so the series is shifted by its global
    mean first; the result is invariant to that shift.
    """
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0:
        return array.copy()
    if k == 1:
        return np.zeros_like(array)
    shifted = array - array.mean()
    sums, sums_sq, counts = _windowed_sums(shifted, k)
    mean = sums / counts
    # sample variance: (sum_sq - n*mean^2) / (n - 1); 0 for singleton windows
    numerator = sums_sq - counts * mean * mean
    numerator = np.maximum(numerator, 0.0)
    denominator = np.maximum(counts - 1.0, 1.0)
    variance = np.where(counts > 1, numerator / denominator, 0.0)
    return np.sqrt(variance)


def movsum(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving sum with shrinking endpoints (MATLAB ``movsum``)."""
    array = _as_float_1d(values)
    if k < 1:
        raise ValueError(f"window length must be >= 1, got {k}")
    if array.size == 0:
        return array.copy()
    if k == 1:
        return array.copy()
    sums, _, _ = _windowed_sums(array, k)
    return sums


def _mov_extreme(values: np.ndarray, k: int, op) -> np.ndarray:
    array = _as_float_1d(values)
    n = array.size
    if n == 0:
        return array.copy()
    lo, hi = window_bounds(n, k)
    # Sliding extrema via stride tricks would complicate shrink handling;
    # windows are short in practice (k <= 100) so a bounded loop is fine.
    out = np.empty(n)
    for i in range(n):
        out[i] = op(array[lo[i] : hi[i]])
    return out


def movmax(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving maximum with shrinking endpoints (``movmax``)."""
    return _mov_extreme(values, k, np.max)


def movmin(values: np.ndarray, k: int) -> np.ndarray:
    """Centered moving minimum with shrinking endpoints (``movmin``)."""
    return _mov_extreme(values, k, np.min)
