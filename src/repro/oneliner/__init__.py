"""One-liner triviality engine (paper §2.2, Definition 1, Table 1)."""

from .criteria import SolveReport, evaluate_flags, solves
from .expressions import (
    FAMILY_IDS,
    DiffFamilyOneLiner,
    FrozenSignalOneLiner,
    MovstdOneLiner,
    OneLiner,
    ThresholdOneLiner,
    make_family,
)
from .primitives import diff, movmax, movmean, movmin, movstd, movsum
from .report import YAHOO_FAMILY_POLICY, Table1, Table1Row, build_table1
from .search import (
    ArchiveSearchResult,
    SearchConfig,
    SeriesSearchResult,
    search_archive,
    search_series,
    solve_with_family,
    threshold_for,
)

__all__ = [
    "diff",
    "movmean",
    "movstd",
    "movsum",
    "movmax",
    "movmin",
    "OneLiner",
    "DiffFamilyOneLiner",
    "ThresholdOneLiner",
    "MovstdOneLiner",
    "FrozenSignalOneLiner",
    "make_family",
    "FAMILY_IDS",
    "SolveReport",
    "solves",
    "evaluate_flags",
    "SearchConfig",
    "SeriesSearchResult",
    "ArchiveSearchResult",
    "search_series",
    "search_archive",
    "solve_with_family",
    "threshold_for",
    "Table1",
    "Table1Row",
    "build_table1",
    "YAHOO_FAMILY_POLICY",
]
