"""One-liner triviality engine (paper §2.2, Definition 1, Table 1).

The paper's sharpest exhibit: large fractions of the Yahoo, Numenta and
SMD benchmarks are "solved" by a *single line of code* — e.g.
``abs(diff(TS))`` or a moving std — so accuracy gains on them are noise.
This package reproduces that machinery:

* :mod:`~repro.oneliner.primitives` — the MATLAB-equivalent vector
  primitives (``diff``, ``movmean``, ``movstd``, ``movmax``, ...; the
  sliding extrema route through the O(n) Gil-Werman pass in
  :mod:`repro.detectors.sliding` with MATLAB shrink semantics).
* :mod:`~repro.oneliner.expressions` — the expression families of
  Table 1 (diff, movstd, threshold, frozen-signal, ...), each a
  parameterized one-liner producing a per-point score.
* :mod:`~repro.oneliner.criteria` — Definition 1: when a one-liner
  "solves" a labeled series under the paper's criteria.
* :mod:`~repro.oneliner.search` — brute-force search for a solving
  family/parameter per series and per archive.
* :mod:`~repro.oneliner.report` — Table 1 itself
  (:func:`build_table1`, printed by ``repro table1``; asserted by
  ``benchmarks/test_table1_yahoo_bruteforce.py``); Figs 1–3 exemplars
  live in ``benchmarks/test_fig01_*`` .. ``test_fig03_*``.

:mod:`repro.stats` reuses the families as the *noise floor* for its
leaderboards: a detector only counts as progress when its CI clears the
best one-liner's.
"""

from .criteria import SolveReport, evaluate_flags, solves
from .expressions import (
    FAMILY_IDS,
    DiffFamilyOneLiner,
    FrozenSignalOneLiner,
    MovstdOneLiner,
    OneLiner,
    ThresholdOneLiner,
    make_family,
)
from .primitives import diff, movmax, movmean, movmin, movstd, movsum
from .report import YAHOO_FAMILY_POLICY, Table1, Table1Row, build_table1
from .search import (
    ArchiveSearchResult,
    SearchConfig,
    SeriesSearchResult,
    search_archive,
    search_series,
    solve_with_family,
    threshold_for,
)

__all__ = [
    "diff",
    "movmean",
    "movstd",
    "movsum",
    "movmax",
    "movmin",
    "OneLiner",
    "DiffFamilyOneLiner",
    "ThresholdOneLiner",
    "MovstdOneLiner",
    "FrozenSignalOneLiner",
    "make_family",
    "FAMILY_IDS",
    "SolveReport",
    "solves",
    "evaluate_flags",
    "SearchConfig",
    "SeriesSearchResult",
    "ArchiveSearchResult",
    "search_series",
    "search_archive",
    "solve_with_family",
    "threshold_for",
    "Table1",
    "Table1Row",
    "build_table1",
    "YAHOO_FAMILY_POLICY",
]
