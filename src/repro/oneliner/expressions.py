"""One-liner expressions (Definition 1 and equations (1)-(6)).

A :class:`OneLiner` is a tiny executable object wrapping a MATLAB-style
single-line predicate.  Evaluating it on a series yields a boolean mask
*in original point coordinates* (diff-based expressions are re-aligned so
that the flag for ``diff(TS)[j]`` lands on point ``j + 1``, the point that
changed).

The paper's general families:

(1)  ``abs(diff(TS)) > u*movmean(abs(diff(TS)),k) + c*movstd(abs(diff(TS)),k) + b``
(2)  ``diff(TS)      > u*movmean(diff(TS),k)      + c*movstd(diff(TS),k)      + b``

and the derived simplified families:

(3)  ``abs(diff(TS)) > b``
(4)  ``abs(diff(TS)) > movmean(abs(diff(TS)),k) + c*movstd(abs(diff(TS)),k) + b``
(5)  ``diff(TS) > b``
(6)  ``diff(TS) > movmean(diff(TS),k) + c*movstd(diff(TS),k) + b``

plus the figure-specific one-liners (``movstd(TS,k) > b``, ``TS > b``,
``TS < b``, ``diff(diff(TS)) == 0``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from . import primitives

__all__ = [
    "OneLiner",
    "DiffFamilyOneLiner",
    "ThresholdOneLiner",
    "MovstdOneLiner",
    "FrozenSignalOneLiner",
    "make_family",
    "FAMILY_IDS",
]

FAMILY_IDS = (1, 2, 3, 4, 5, 6)


class OneLiner(ABC):
    """An executable single-line anomaly predicate."""

    @property
    @abstractmethod
    def code(self) -> str:
        """The MATLAB-style one-line source for display."""

    @abstractmethod
    def score(self, values: np.ndarray) -> np.ndarray:
        """Real-valued per-point score; the predicate is ``score > 0``.

        Scores are aligned to original point indices.  Points for which
        the expression is undefined (e.g. point 0 of a diff) score
        ``-inf`` so they can never be flagged.
        """

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean per-point mask of flagged points."""
        return self.score(values) > 0

    def flags(self, values: np.ndarray) -> np.ndarray:
        """Indices of flagged points, ascending."""
        return np.flatnonzero(self.mask(values))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.code!r})"


def _align_diff_scores(raw: np.ndarray, n: int) -> np.ndarray:
    """Map a length ``n-1`` diff-space score to point space.

    ``diff(TS)[j] = TS[j+1] - TS[j]`` describes the change *arriving at*
    point ``j + 1``, so the score for point ``i`` is ``raw[i - 1]`` and
    point 0 is undefined.
    """
    out = np.full(n, -np.inf)
    out[1:] = raw
    return out


@dataclass(frozen=True)
class DiffFamilyOneLiner(OneLiner):
    """Families (1)/(2) and their simplifications (3)-(6).

    Parameters mirror the paper: ``use_abs`` selects ``abs(diff(TS))``
    (families 1/3/4) vs. ``diff(TS)`` (families 2/5/6); ``u`` switches the
    ``movmean`` term; ``c`` scales the ``movstd`` term; ``b`` is the
    offset; ``k`` is the moving-window length.
    """

    use_abs: bool
    u: int = 0
    c: float = 0.0
    k: int = 1
    b: float = 0.0

    def __post_init__(self) -> None:
        if self.u not in (0, 1):
            raise ValueError(f"u must be 0 or 1, got {self.u}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    @property
    def family(self) -> int:
        """The equation number (3)-(6) this parameterization matches.

        Parameterizations using both terms fall back to the general
        family (1) or (2).
        """
        uses_moving = self.u == 1 or self.c != 0.0
        if not uses_moving:
            return 3 if self.use_abs else 5
        if self.u == 1 and self.use_abs:
            return 4
        if self.u == 1 and not self.use_abs:
            return 6
        return 1 if self.use_abs else 2

    @property
    def code(self) -> str:
        lhs = "abs(diff(TS))" if self.use_abs else "diff(TS)"
        terms = []
        if self.u == 1:
            terms.append(f"movmean({lhs},{self.k})")
        if self.c != 0.0:
            terms.append(f"{self.c:g}*movstd({lhs},{self.k})")
        terms.append(f"{self.b:g}")
        return f"{lhs} > " + " + ".join(terms)

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        raw = primitives.diff(values)
        if self.use_abs:
            raw = np.abs(raw)
        rhs = np.full(raw.shape, float(self.b))
        if self.u == 1:
            rhs = rhs + primitives.movmean(raw, self.k)
        if self.c != 0.0:
            rhs = rhs + self.c * primitives.movstd(raw, self.k)
        return _align_diff_scores(raw - rhs, values.size)


def make_family(
    family: int, k: int = 1, c: float = 0.0, b: float = 0.0
) -> DiffFamilyOneLiner:
    """Construct a one-liner for equation number ``family`` in (3)-(6)."""
    if family == 3:
        return DiffFamilyOneLiner(use_abs=True, u=0, c=0.0, k=1, b=b)
    if family == 4:
        return DiffFamilyOneLiner(use_abs=True, u=1, c=c, k=k, b=b)
    if family == 5:
        return DiffFamilyOneLiner(use_abs=False, u=0, c=0.0, k=1, b=b)
    if family == 6:
        return DiffFamilyOneLiner(use_abs=False, u=1, c=c, k=k, b=b)
    raise ValueError(f"family must be one of 3, 4, 5, 6; got {family}")


@dataclass(frozen=True)
class ThresholdOneLiner(OneLiner):
    """Raw-value threshold, e.g. Fig 3's ``R1 > 0.45`` or Fig 1's ``M19 < 0.01``."""

    b: float
    above: bool = True

    @property
    def code(self) -> str:
        op = ">" if self.above else "<"
        return f"TS {op} {self.b:g}"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return values - self.b if self.above else self.b - values


@dataclass(frozen=True)
class MovstdOneLiner(OneLiner):
    """Moving-std threshold, e.g. Fig 2's ``movstd(AISD,5) > 10``."""

    k: int
    b: float

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k must be >= 2 for movstd, got {self.k}")

    @property
    def code(self) -> str:
        return f"movstd(TS,{self.k}) > {self.b:g}"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return primitives.movstd(values, self.k) - self.b


@dataclass(frozen=True)
class FrozenSignalOneLiner(OneLiner):
    """NASA freeze detector: ``diff(diff(TS)) == 0`` over a minimum run.

    The paper suggests flagging "three consecutive values [being] the
    same" with ``diff(diff(TS)) == 0``.  Taken literally that also fires
    on any locally linear ramp, so we require the *first* difference to
    vanish too (|diff| <= atol) for at least ``min_run`` points — which is
    exactly the "dynamic time series suddenly becoming constant" pattern.
    """

    min_run: int = 3
    atol: float = 0.0

    @property
    def code(self) -> str:
        return "diff(diff(TS)) == 0"

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        n = values.size
        out = np.full(n, -1.0)
        if n < 2:
            return out
        flat = np.abs(np.diff(values)) <= self.atol
        # run length of consecutive flat steps ending at each step index
        run = np.zeros(flat.size, dtype=int)
        count = 0
        for j, is_flat in enumerate(flat):
            count = count + 1 if is_flat else 0
            run[j] = count
        # step j covers points j and j+1; a run of (min_run - 1) steps
        # means min_run equal consecutive points ending at point j + 1.
        hits = np.flatnonzero(run >= self.min_run - 1) + 1
        out[hits] = 1.0
        return out
