"""Table-1-style aggregation of brute-force search results.

Groups an archive's series (by the ``dataset`` metadata key for the
simulated Yahoo archive), searches each group with the family order the
paper used, and renders the same rows as Table 1 of the paper:

    Dataset | Solvable with | # Time Series Solved | # in Dataset | Percent
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import Archive, LabeledSeries
from .search import ArchiveSearchResult, SearchConfig, search_archive

__all__ = ["Table1Row", "Table1", "build_table1", "YAHOO_FAMILY_POLICY"]

# Family order per Yahoo sub-benchmark, as presented in Table 1.
YAHOO_FAMILY_POLICY: dict[str, tuple[int, ...]] = {
    "A1": (3, 4),
    "A2": (3, 4),
    "A3": (5, 6),
    "A4": (5, 6),
}


@dataclass(frozen=True)
class Table1Row:
    dataset: str
    family: int
    solved: int
    total: int

    @property
    def percent(self) -> float:
        return 100.0 * self.solved / self.total if self.total else 0.0


@dataclass
class Table1:
    """All rows plus subtotals, mirroring the paper's Table 1."""

    rows: list[Table1Row]
    subtotals: dict[str, tuple[int, int]]  # dataset -> (solved, total)
    search: dict[str, ArchiveSearchResult]

    @property
    def total_solved(self) -> int:
        return sum(solved for solved, _ in self.subtotals.values())

    @property
    def total_series(self) -> int:
        return sum(total for _, total in self.subtotals.values())

    @property
    def total_percent(self) -> float:
        if not self.total_series:
            return 0.0
        return 100.0 * self.total_solved / self.total_series

    def format(self) -> str:
        lines = [
            f"{'Dataset':<8}{'Solvable with':<15}{'# Solved':>10}"
            f"{'# in Dataset':>14}{'Percent':>10}"
        ]
        for dataset in self.subtotals:
            for row in self.rows:
                if row.dataset != dataset:
                    continue
                lines.append(
                    f"{row.dataset:<8}{'(' + str(row.family) + ')':<15}"
                    f"{row.solved:>10}{row.total:>14}{row.percent:>9.1f}%"
                )
            solved, total = self.subtotals[dataset]
            pct = 100.0 * solved / total if total else 0.0
            lines.append(
                f"{dataset:<8}{'Subtotal':<15}{solved:>10}{total:>14}{pct:>9.1f}%"
            )
        lines.append(
            f"{'Total':<8}{'':<15}{self.total_solved:>10}"
            f"{self.total_series:>14}{self.total_percent:>9.1f}%"
        )
        return "\n".join(lines)


def build_table1(
    archive: Archive,
    config: SearchConfig = SearchConfig(),
    family_policy: dict[str, tuple[int, ...]] | None = None,
    group_key: str = "dataset",
) -> Table1:
    """Search ``archive`` and aggregate the results as Table 1.

    Series are grouped by ``series.meta[group_key]``; each group is
    searched with its family order from ``family_policy`` (defaulting to
    the paper's Yahoo policy, then to ``config.families``).
    """
    policy = YAHOO_FAMILY_POLICY if family_policy is None else family_policy

    def families_for(series: LabeledSeries) -> tuple[int, ...]:
        group = str(series.meta.get(group_key, ""))
        return policy.get(group, config.families)

    groups: dict[str, list[str]] = {}
    for series in archive.series:
        group = str(series.meta.get(group_key, "?"))
        groups.setdefault(group, []).append(series.name)

    rows: list[Table1Row] = []
    subtotals: dict[str, tuple[int, int]] = {}
    searches: dict[str, ArchiveSearchResult] = {}
    for group in sorted(groups):
        sub_archive = archive.subset(groups[group], name=group)
        result = search_archive(sub_archive, config, families_for)
        searches[group] = result
        by_family = result.solved_by_family()
        for family in policy.get(group, config.families):
            rows.append(
                Table1Row(
                    dataset=group,
                    family=family,
                    solved=by_family.get(family, 0),
                    total=len(sub_archive),
                )
            )
        subtotals[group] = (result.num_solved, len(sub_archive))
    return Table1(rows=rows, subtotals=subtotals, search=searches)
