"""The "solves the problem" criterion for one-liners.

The paper claims a one-liner *solves* a benchmark problem when its flagged
points match the ground truth (Fig 3 shows the match is essentially
exact).  We formalize that as *tolerance-adjusted perfect precision and
recall*:

* the one-liner flags at least one point;
* every flagged point lies within ``tolerance`` points of some labeled
  region (no false positives, modulo slop); and
* every labeled region contains at least one flag (within slop) —
  no false negatives.

The slop absorbs the one-off alignment ambiguity of diff-based
expressions that §2.4/§4.4 of the paper discuss ("algorithms can place
their computed label at the beginning, the end or the middle of the
subsequence").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import LabeledSeries, Labels
from .expressions import OneLiner

__all__ = ["SolveReport", "evaluate_flags", "solves"]


@dataclass(frozen=True)
class SolveReport:
    """Outcome of checking one one-liner against one labeled series."""

    solved: bool
    num_flags: int
    num_regions: int
    regions_hit: int
    false_positives: int
    tolerance: int

    @property
    def precision(self) -> float:
        if self.num_flags == 0:
            return 0.0
        return (self.num_flags - self.false_positives) / self.num_flags

    @property
    def recall(self) -> float:
        if self.num_regions == 0:
            return 0.0
        return self.regions_hit / self.num_regions


def evaluate_flags(
    flags: np.ndarray, labels: Labels, tolerance: int = 2
) -> SolveReport:
    """Score a set of flagged indices against ground-truth labels."""
    flags = np.asarray(flags, dtype=int)
    expanded = [region.expanded(tolerance, labels.n) for region in labels.regions]
    false_positives = 0
    hit = [False] * len(expanded)
    for flag in flags:
        inside = False
        for idx, region in enumerate(expanded):
            if region.start <= flag < region.end:
                hit[idx] = True
                inside = True
        if not inside:
            false_positives += 1
    regions_hit = sum(hit)
    solved = (
        flags.size > 0
        and false_positives == 0
        and len(expanded) > 0
        and regions_hit == len(expanded)
    )
    return SolveReport(
        solved=solved,
        num_flags=int(flags.size),
        num_regions=len(expanded),
        regions_hit=regions_hit,
        false_positives=false_positives,
        tolerance=tolerance,
    )


def solves(
    oneliner: OneLiner, series: LabeledSeries, tolerance: int = 2
) -> SolveReport:
    """Check whether ``oneliner`` solves ``series`` (Definition 1 test)."""
    return evaluate_flags(oneliner.flags(series.values), series.labels, tolerance)
